// Tests for the bin-packing layer: FFD/BFD behaviour, the paper's
// Example 4.1, Theorem 4.1 bounds as a property sweep, and the §8
// super-bin construction including Example 8.1.

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/random.h"
#include "concealer/bin_packing.h"
#include "concealer/super_bins.h"

namespace concealer {
namespace {

TEST(BinPackingTest, PaperExample41) {
  // c_tuple[5] = {79, 2, 73, 7, 7}: FFD must yield three bins of size 79
  // holding {cid0}, {cid2, cid1}, {cid3, cid4} and 69 total fakes
  // (Example 4.1 uses 1-based cids; ours are 0-based).
  const std::vector<uint32_t> c_tuple{79, 2, 73, 7, 7};
  auto plan = MakeBinPlan(c_tuple, PackAlgorithm::kFirstFitDecreasing);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->bin_size, 79u);
  ASSERT_EQ(plan->bins.size(), 3u);
  EXPECT_EQ(plan->bins[0].cell_ids, (std::vector<uint32_t>{0}));
  EXPECT_EQ(plan->bins[1].cell_ids, (std::vector<uint32_t>{2, 1}));
  EXPECT_EQ(plan->bins[2].cell_ids, (std::vector<uint32_t>{3, 4}));
  EXPECT_EQ(plan->bins[0].fake_count, 0u);
  EXPECT_EQ(plan->bins[1].fake_count, 4u);
  EXPECT_EQ(plan->bins[2].fake_count, 65u);
  EXPECT_EQ(plan->total_fakes, 69u);
  EXPECT_TRUE(CheckTheorem41(*plan, 79 + 2 + 73 + 7 + 7).ok());
}

TEST(BinPackingTest, FakeRangesAreDisjoint) {
  const std::vector<uint32_t> c_tuple{50, 30, 30, 10, 5, 5};
  auto plan = MakeBinPlan(c_tuple, PackAlgorithm::kFirstFitDecreasing);
  ASSERT_TRUE(plan.ok());
  std::set<uint64_t> seen;
  for (const Bin& bin : plan->bins) {
    for (uint64_t f = bin.fake_id_lo; f < bin.fake_id_lo + bin.fake_count;
         ++f) {
      EXPECT_TRUE(seen.insert(f).second) << "fake id " << f << " reused";
    }
  }
  EXPECT_EQ(seen.size(), plan->total_fakes);
}

TEST(BinPackingTest, EveryCellIdPlacedExactlyOnce) {
  const std::vector<uint32_t> c_tuple{9, 0, 3, 3, 7, 0, 1};
  auto plan = MakeBinPlan(c_tuple, PackAlgorithm::kFirstFitDecreasing);
  ASSERT_TRUE(plan.ok());
  std::vector<int> placed(c_tuple.size(), 0);
  for (const Bin& bin : plan->bins) {
    for (uint32_t cid : bin.cell_ids) placed[cid]++;
  }
  for (size_t cid = 0; cid < c_tuple.size(); ++cid) {
    EXPECT_EQ(placed[cid], 1) << "cid " << cid;
    EXPECT_EQ(plan->bins[plan->bin_of_cell_id[cid]].cell_ids.end() !=
                  std::find(plan->bins[plan->bin_of_cell_id[cid]]
                                .cell_ids.begin(),
                            plan->bins[plan->bin_of_cell_id[cid]]
                                .cell_ids.end(),
                            static_cast<uint32_t>(cid)),
              true);
  }
}

TEST(BinPackingTest, BfdPacksAtLeastAsTightAsFfdOnKnownCase) {
  // BFD picks the tightest bin; both must satisfy the same invariants.
  const std::vector<uint32_t> c_tuple{40, 35, 30, 25, 20, 15, 10, 5};
  auto ffd = MakeBinPlan(c_tuple, PackAlgorithm::kFirstFitDecreasing);
  auto bfd = MakeBinPlan(c_tuple, PackAlgorithm::kBestFitDecreasing);
  ASSERT_TRUE(ffd.ok());
  ASSERT_TRUE(bfd.ok());
  const uint64_t n = std::accumulate(c_tuple.begin(), c_tuple.end(), 0ull);
  EXPECT_TRUE(CheckTheorem41(*ffd, n).ok());
  EXPECT_TRUE(CheckTheorem41(*bfd, n).ok());
  EXPECT_LE(bfd->bins.size(), ffd->bins.size() + 1);
}

TEST(BinPackingTest, ExplicitBinSizeRejectsOversizedInput) {
  EXPECT_FALSE(MakeBinPlanWithSize({10, 5}, 8,
                                   PackAlgorithm::kFirstFitDecreasing)
                   .ok());
  EXPECT_FALSE(MakeBinPlanWithSize({1}, 0,
                                   PackAlgorithm::kFirstFitDecreasing)
                   .ok());
  EXPECT_FALSE(
      MakeBinPlan({}, PackAlgorithm::kFirstFitDecreasing).ok());
}

TEST(BinPackingTest, AllZeroWeightsStillProducesAPlan) {
  auto plan = MakeBinPlan({0, 0, 0}, PackAlgorithm::kFirstFitDecreasing);
  ASSERT_TRUE(plan.ok());
  EXPECT_GE(plan->bin_size, 1u);
  size_t placed = 0;
  for (const Bin& bin : plan->bins) placed += bin.cell_ids.size();
  EXPECT_EQ(placed, 3u);
}

// Theorem 4.1 property sweep over random weight distributions: bounds on
// bin count and fake count hold, bins are equi-sized, fake ranges disjoint.
struct SweepParams {
  uint64_t seed;
  uint32_t num_cids;
  uint32_t max_weight;
  bool bfd;
};

class Theorem41Sweep : public ::testing::TestWithParam<SweepParams> {};

TEST_P(Theorem41Sweep, BoundsHold) {
  const SweepParams p = GetParam();
  Rng rng(p.seed);
  std::vector<uint32_t> c_tuple(p.num_cids);
  uint64_t n = 0;
  for (auto& w : c_tuple) {
    // Skewed weights: occasionally heavy cell-ids, many light ones.
    w = rng.Uniform(4) == 0
            ? static_cast<uint32_t>(rng.Uniform(p.max_weight))
            : static_cast<uint32_t>(rng.Uniform(p.max_weight / 8 + 1));
    n += w;
  }
  auto plan = MakeBinPlan(c_tuple, p.bfd
                                       ? PackAlgorithm::kBestFitDecreasing
                                       : PackAlgorithm::kFirstFitDecreasing);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(CheckTheorem41(*plan, n).ok());

  // The sharper paper statement when n >> |b|: fakes <= n + |b|/2.
  if (n > 10ull * plan->bin_size) {
    EXPECT_LE(plan->total_fakes, n + plan->bin_size / 2 + plan->bin_size);
  }
  // FFD/BFD half-full property: at most one bin under half-full.
  uint32_t underfull = 0;
  for (const Bin& bin : plan->bins) {
    if (bin.real_tuples < plan->bin_size / 2) ++underfull;
  }
  EXPECT_LE(underfull, 1u + (n == 0 ? plan->bins.size() : 0));
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, Theorem41Sweep,
    ::testing::Values(SweepParams{1, 10, 100, false},
                      SweepParams{2, 100, 1000, false},
                      SweepParams{3, 1000, 500, false},
                      SweepParams{4, 100, 1000, true},
                      SweepParams{5, 500, 50, true},
                      SweepParams{6, 37, 9999, false}));

TEST(SuperBinTest, PaperExample81) {
  // 12 bins with unique-value counts 1,2,9,1,2,10,1,1,1,8,2,7 and f = 4
  // must yield super-bins retrieved 12, 12, 11, 10 times under a uniform
  // workload (paper §8, Example 8.1).
  const std::vector<uint64_t> unique{1, 2, 9, 1, 2, 10, 1, 1, 1, 8, 2, 7};
  auto plan = MakeSuperBins(unique, 4);
  ASSERT_TRUE(plan.ok());
  std::vector<uint64_t> retrievals = UniformWorkloadRetrievals(*plan);
  std::sort(retrievals.begin(), retrievals.end(), std::greater<>());
  EXPECT_EQ(retrievals, (std::vector<uint64_t>{12, 12, 11, 10}));
  // Every super-bin has exactly 12/4 = 3 bins.
  for (const auto& sb : plan->super_bins) EXPECT_EQ(sb.size(), 3u);
}

TEST(SuperBinTest, RejectsBadFactor) {
  const std::vector<uint64_t> unique{1, 2, 3, 4, 5};
  EXPECT_FALSE(MakeSuperBins(unique, 0).ok());
  EXPECT_FALSE(MakeSuperBins(unique, 2).ok());  // 2 does not divide 5.
  EXPECT_FALSE(MakeSuperBins(unique, 6).ok());  // f > #bins.
  EXPECT_TRUE(MakeSuperBins(unique, 5).ok());
  EXPECT_TRUE(MakeSuperBins(unique, 1).ok());
}

TEST(SuperBinTest, BalancesBetterThanNaiveChunking) {
  // Strongly skewed unique counts: the balanced assignment's max/min
  // retrieval spread must beat contiguous chunking.
  Rng rng(9);
  std::vector<uint64_t> unique(40);
  for (auto& u : unique) u = 1 + rng.Uniform(64);
  auto plan = MakeSuperBins(unique, 8);
  ASSERT_TRUE(plan.ok());
  auto minmax =
      std::minmax_element(plan->unique_values.begin(),
                          plan->unique_values.end());

  std::vector<uint64_t> naive(8, 0);
  for (size_t i = 0; i < unique.size(); ++i) naive[i / 5] += unique[i];
  auto naive_minmax = std::minmax_element(naive.begin(), naive.end());

  EXPECT_LE(*minmax.second - *minmax.first,
            *naive_minmax.second - *naive_minmax.first);
}

TEST(SuperBinTest, SuperOfBinIsConsistent) {
  const std::vector<uint64_t> unique{5, 1, 3, 2, 4, 6};
  auto plan = MakeSuperBins(unique, 3);
  ASSERT_TRUE(plan.ok());
  for (uint32_t s = 0; s < plan->super_bins.size(); ++s) {
    for (uint32_t b : plan->super_bins[s]) {
      EXPECT_EQ(plan->super_of_bin[b], s);
    }
  }
}

}  // namespace
}  // namespace concealer
