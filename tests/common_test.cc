// Unit tests for the common substrate: Status/StatusOr, Slice, coding,
// Rng/Zipf, hex.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <vector>

#include "common/coding.h"
#include "common/hex.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace concealer {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCodesAndMessages) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_FALSE(st.IsCorruption());
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, AllConstructorsProduceMatchingPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::PermissionDenied("x").IsPermissionDenied());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::Internal("boom");
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsInternal());
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(SliceTest, CompareOrdersLexicographically) {
  EXPECT_LT(Slice("abc", 3).Compare(Slice("abd", 3)), 0);
  EXPECT_GT(Slice("abd", 3).Compare(Slice("abc", 3)), 0);
  EXPECT_EQ(Slice("abc", 3).Compare(Slice("abc", 3)), 0);
  // Prefix sorts first.
  EXPECT_LT(Slice("ab", 2).Compare(Slice("abc", 3)), 0);
}

TEST(SliceTest, EqualityAndEmpty) {
  Slice empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty, Slice());
  std::string s = "xyz";
  EXPECT_EQ(Slice(s), Slice("xyz", 3));
  EXPECT_NE(Slice(s), Slice("xy", 2));
}

TEST(CodingTest, Fixed32RoundTrip) {
  Bytes b;
  PutFixed32(&b, 0xdeadbeef);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(DecodeFixed32(b.data()), 0xdeadbeefu);
}

TEST(CodingTest, Fixed64RoundTrip) {
  Bytes b;
  PutFixed64(&b, 0x0123456789abcdefULL);
  ASSERT_EQ(b.size(), 8u);
  EXPECT_EQ(DecodeFixed64(b.data()), 0x0123456789abcdefULL);
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  Bytes b;
  PutLengthPrefixed(&b, Slice("hello", 5));
  PutLengthPrefixed(&b, Slice());  // Empty field.
  PutLengthPrefixed(&b, Slice("world", 5));
  size_t off = 0;
  Bytes f1, f2, f3;
  ASSERT_TRUE(GetLengthPrefixed(b, &off, &f1));
  ASSERT_TRUE(GetLengthPrefixed(b, &off, &f2));
  ASSERT_TRUE(GetLengthPrefixed(b, &off, &f3));
  EXPECT_EQ(Slice(f1), Slice("hello", 5));
  EXPECT_TRUE(f2.empty());
  EXPECT_EQ(Slice(f3), Slice("world", 5));
  EXPECT_EQ(off, b.size());
}

TEST(CodingTest, GetLengthPrefixedDetectsTruncation) {
  Bytes b;
  PutLengthPrefixed(&b, Slice("hello", 5));
  b.pop_back();  // Truncate.
  size_t off = 0;
  Bytes f;
  EXPECT_FALSE(GetLengthPrefixed(b, &off, &f));
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInRange) {
  Rng rng(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    const uint64_t v = rng.UniformRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, UniformCoversAllValues) {
  Rng rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(ZipfTest, SkewsTowardLowRanks) {
  ZipfSampler zipf(1000, 0.99, 42);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[zipf.Sample()]++;
  // Rank 0 must be sampled far more often than rank 500.
  EXPECT_GT(counts[0], 20 * (counts.count(500) ? counts[500] : 1));
  // All samples within domain.
  for (const auto& [rank, _] : counts) EXPECT_LT(rank, 1000u);
}

TEST(ZipfTest, ThetaZeroIsNearUniform) {
  ZipfSampler zipf(10, 0.0, 7);
  std::map<uint64_t, int> counts;
  const int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) counts[zipf.Sample()]++;
  for (uint64_t r = 0; r < 10; ++r) {
    EXPECT_GT(counts[r], kSamples / 20) << "rank " << r;
  }
}

TEST(HexTest, RoundTrip) {
  const Bytes data{0x00, 0x01, 0xab, 0xff};
  const std::string hex = HexEncode(data);
  EXPECT_EQ(hex, "0001abff");
  auto decoded = HexDecode(hex);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, data);
}

TEST(HexTest, DecodeRejectsBadInput) {
  EXPECT_FALSE(HexDecode("abc").ok());   // Odd length.
  EXPECT_FALSE(HexDecode("zz").ok());    // Non-hex char.
  EXPECT_TRUE(HexDecode("ABCD").ok());   // Uppercase accepted.
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEdgeSizes) {
  ThreadPool pool(4);
  std::atomic<size_t> ran{0};
  pool.ParallelFor(0, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 0u);
  pool.ParallelFor(1, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 1u);
  // Fewer items than workers: the surplus workers must not deadlock.
  pool.ParallelFor(2, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 3u);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);  // One worker: a queued nested helper could never run.
  std::atomic<int> inner_runs{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { inner_runs.fetch_add(1); });
  });
  EXPECT_EQ(inner_runs.load(), 32);
}

TEST(ThreadPoolTest, ParallelForRunsBackToBack) {
  ThreadPool pool(3);
  std::atomic<uint64_t> sum{0};
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(64, [&](size_t i) { sum.fetch_add(i); });
  }
  EXPECT_EQ(sum.load(), 20u * (64u * 63u / 2));
}

TEST(ThreadPoolTest, WorkerSlotsAreInRangeAndExclusive) {
  // The worker-slot overload's contract: slots in [0, num_threads()), and
  // at most one live thread per slot — so per-slot scratch needs no locks.
  // Exclusivity is asserted with an atomic "occupied" flag per slot that
  // every fn invocation sets and clears around a small critical section.
  for (size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    const size_t slots = pool.num_threads();
    std::vector<std::atomic<int>> occupied(slots);
    std::vector<std::atomic<int>> uses(slots);
    std::atomic<bool> violation{false};
    pool.ParallelFor(200, [&](size_t, size_t worker) {
      if (worker >= slots) {
        violation.store(true);
        return;
      }
      if (occupied[worker].fetch_add(1) != 0) violation.store(true);
      uses[worker].fetch_add(1);
      occupied[worker].fetch_sub(1);
    });
    EXPECT_FALSE(violation.load()) << threads;
    size_t total = 0;
    for (size_t s = 0; s < slots; ++s) total += uses[s].load();
    EXPECT_EQ(total, 200u) << threads;
  }
}

TEST(ThreadPoolTest, ParallelForCompletesWhileWorkersBlockOnCallerHeldLock) {
  // Shared-pool deadlock regression: with one process-wide pool, every
  // worker can be busy with a task that blocks on a lock the ParallelFor
  // caller holds (a batch-scheduled query waiting on the epoch lock a
  // fetch fan-out's caller took). ParallelFor's completion must not
  // require queued helper tasks to be scheduled — the caller's own drain
  // finishes the loop, the caller releases its lock, and only then do the
  // blocked workers proceed.
  ThreadPool pool(2);  // Exactly one background worker to occupy.
  std::mutex caller_lock;
  std::atomic<bool> worker_entered{false};
  std::atomic<bool> worker_done{false};

  std::unique_lock<std::mutex> held(caller_lock);
  pool.Submit([&] {
    worker_entered.store(true);
    std::lock_guard<std::mutex> blocked(caller_lock);  // Held by the caller.
    worker_done.store(true);
  });
  while (!worker_entered.load()) std::this_thread::yield();

  // The pool's only worker is now blocked on caller_lock. The old
  // completion protocol waited for the submitted helper to EXECUTE and
  // hung here forever; the caller-drain protocol finishes on its own.
  std::atomic<size_t> ran{0};
  pool.ParallelFor(32, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 32u);
  EXPECT_FALSE(worker_done.load());

  held.unlock();
  // The worker proceeds and the pool shuts down cleanly (the stale helper
  // task dispenses an out-of-range index and exits without running fn).
  while (!worker_done.load()) std::this_thread::yield();
  pool.ParallelFor(4, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 36u);
}

TEST(ThreadPoolTest, NestedParallelForKeepsEnclosingWorkerSlot) {
  ThreadPool pool(4);
  std::atomic<bool> mismatch{false};
  pool.ParallelFor(16, [&](size_t, size_t outer_slot) {
    pool.ParallelFor(4, [&](size_t, size_t inner_slot) {
      if (inner_slot != outer_slot) mismatch.store(true);
    });
  });
  EXPECT_FALSE(mismatch.load());
}

}  // namespace
}  // namespace concealer
