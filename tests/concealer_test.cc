// End-to-end integration tests: DP encrypts, SP ingests, the enclave
// executes queries — answers must match the cleartext oracle for every
// method (BPB / eBPB / winSecRange), in plain and oblivious mode, with and
// without verification; plus the security properties (volume hiding,
// tamper detection, fake/real structure, authorization).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "baseline/cleartext_db.h"
#include "baseline/opaque_scan.h"
#include "common/random.h"
#include "concealer/client.h"
#include "concealer/data_provider.h"
#include "concealer/epoch_io.h"
#include "concealer/service_provider.h"
#include "concealer/wire.h"
#include "crypto/aes_backend.h"
#include "workload/wifi_generator.h"

namespace concealer {
namespace {

ConcealerConfig TestConfig() {
  ConcealerConfig config;
  config.key_buckets = {8};
  config.key_domains = {20};
  config.time_buckets = 24;
  config.num_cell_ids = 40;
  config.epoch_seconds = 86400;
  config.time_quantum = 60;
  config.make_hash_chains = true;
  return config;
}

WifiConfig TestWorkload() {
  WifiConfig wifi;
  wifi.num_access_points = 20;
  wifi.num_devices = 50;
  wifi.start_time = 0;
  wifi.duration_seconds = 2 * 86400;
  wifi.total_rows = 4000;
  wifi.seed = 77;
  return wifi;
}

// Shared pipeline: encrypting the dataset once keeps the suite fast.
class ConcealerE2ETest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new ConcealerConfig(TestConfig());
    WifiGenerator gen(TestWorkload());
    tuples_ = new std::vector<PlainTuple>(gen.Generate());

    dp_ = new DataProvider(*config_, Bytes(32, 0x42));
    ASSERT_TRUE(dp_->RegisterUser("alice", Slice("alice-secret", 12),
                                  (*tuples_)[0].observation)
                    .ok());
    ASSERT_TRUE(dp_->RegisterUser("bob", Slice("bob-secret", 10), "").ok());

    oracle_ = new CleartextDb(config_->time_quantum);
    oracle_->Insert(*tuples_);

    sp_ = new ServiceProvider(*config_, dp_->shared_secret());
    ASSERT_TRUE(sp_->LoadRegistry(dp_->EncryptedRegistry()).ok());
    auto epochs = dp_->EncryptAll(*tuples_);
    ASSERT_TRUE(epochs.ok());
    ASSERT_EQ(epochs->size(), 2u);
    for (const auto& epoch : *epochs) {
      ASSERT_TRUE(sp_->IngestEpoch(epoch).ok());
    }
  }

  static void TearDownTestSuite() {
    delete sp_;
    delete oracle_;
    delete dp_;
    delete tuples_;
    delete config_;
    sp_ = nullptr;
  }

  // Runs the query through Concealer and the oracle; both must agree.
  void ExpectMatchesOracle(const Query& query) {
    auto got = sp_->Execute(query);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    auto want = oracle_->Execute(query);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(got->count, want->count);
    EXPECT_EQ(got->rows_matched, want->rows_matched);
    EXPECT_EQ(got->keyed_counts, want->keyed_counts);
  }

  static ConcealerConfig* config_;
  static std::vector<PlainTuple>* tuples_;
  static DataProvider* dp_;
  static CleartextDb* oracle_;
  static ServiceProvider* sp_;
};

ConcealerConfig* ConcealerE2ETest::config_ = nullptr;
std::vector<PlainTuple>* ConcealerE2ETest::tuples_ = nullptr;
DataProvider* ConcealerE2ETest::dp_ = nullptr;
CleartextDb* ConcealerE2ETest::oracle_ = nullptr;
ServiceProvider* ConcealerE2ETest::sp_ = nullptr;

Query PointQuery(uint64_t location, uint64_t t) {
  Query q;
  q.agg = Aggregate::kCount;
  q.key_values = {{location}};
  q.time_lo = t;
  q.time_hi = t;
  return q;
}

Query RangeQuery(uint64_t location, uint64_t lo, uint64_t hi,
                 RangeMethod method) {
  Query q;
  q.agg = Aggregate::kCount;
  q.key_values = {{location}};
  q.time_lo = lo;
  q.time_hi = hi;
  q.method = method;
  return q;
}

TEST_F(ConcealerE2ETest, PointQueriesMatchOracle) {
  Rng rng(1);
  for (int i = 0; i < 6; ++i) {
    const uint64_t loc = rng.Uniform(20);
    const uint64_t t = rng.Uniform(2 * 86400) / 60 * 60;
    ExpectMatchesOracle(PointQuery(loc, t));
  }
}

TEST_F(ConcealerE2ETest, PointQueryWithVerification) {
  Query q = PointQuery(3, 9 * 3600);
  q.verify = true;
  auto got = sp_->Execute(q);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->verified);
  auto want = oracle_->Execute(q);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(got->count, want->count);
}

TEST_F(ConcealerE2ETest, ObliviousPointQueryMatchesOracle) {
  Query q = PointQuery(5, 12 * 3600);
  q.oblivious = true;
  ExpectMatchesOracle(q);
}

class RangeMethodTest
    : public ConcealerE2ETest,
      public ::testing::WithParamInterface<std::tuple<RangeMethod, bool>> {};

TEST_P(RangeMethodTest, RangeCountMatchesOracle) {
  const auto [method, oblivious] = GetParam();
  Query q = RangeQuery(2, 10 * 3600, 10 * 3600 + 20 * 60, method);
  q.oblivious = oblivious;
  ExpectMatchesOracle(q);
}

TEST_P(RangeMethodTest, CrossEpochRangeMatchesOracle) {
  const auto [method, oblivious] = GetParam();
  // 22:00 day 1 to 02:00 day 2 spans both epochs.
  Query q = RangeQuery(1, 22 * 3600, 86400 + 2 * 3600, method);
  q.oblivious = oblivious;
  ExpectMatchesOracle(q);
}

std::string RangeMethodName(
    const ::testing::TestParamInfo<std::tuple<RangeMethod, bool>>& info) {
  const RangeMethod m = std::get<0>(info.param);
  const bool oblivious = std::get<1>(info.param);
  std::string name = m == RangeMethod::kBPB    ? "BPB"
                     : m == RangeMethod::kEBPB ? "eBPB"
                                               : "winSecRange";
  return name + (oblivious ? "Oblivious" : "Plain");
}

INSTANTIATE_TEST_SUITE_P(
    Methods, RangeMethodTest,
    ::testing::Combine(::testing::Values(RangeMethod::kBPB,
                                         RangeMethod::kEBPB,
                                         RangeMethod::kWinSecRange),
                       ::testing::Bool()),
    RangeMethodName);

TEST_F(ConcealerE2ETest, TopKLocationsMatchesOracle) {
  Query q;
  q.agg = Aggregate::kTopK;
  q.k = 5;
  q.time_lo = 9 * 3600;
  q.time_hi = 11 * 3600;
  ExpectMatchesOracle(q);
}

TEST_F(ConcealerE2ETest, ThresholdLocationsMatchesOracle) {
  Query q;
  q.agg = Aggregate::kThresholdKeys;
  q.threshold = 5;
  q.time_lo = 9 * 3600;
  q.time_hi = 12 * 3600;
  ExpectMatchesOracle(q);
}

TEST_F(ConcealerE2ETest, KeysWithObservationMatchesOracle) {
  Query q;
  q.agg = Aggregate::kKeysWithObservation;
  q.observation = (*tuples_)[0].observation;
  q.time_lo = 0;
  q.time_hi = 86399;
  ExpectMatchesOracle(q);
}

TEST_F(ConcealerE2ETest, CountObservationAtLocationMatchesOracle) {
  // Q5: count of a device at a location over a window.
  const PlainTuple& probe = (*tuples_)[42];
  Query q;
  q.agg = Aggregate::kCount;
  q.key_values = {probe.keys};
  q.observation = probe.observation;
  q.time_lo = probe.time > 3600 ? probe.time - 3600 : 0;
  q.time_hi = probe.time + 3600;
  ExpectMatchesOracle(q);
  EXPECT_GE(oracle_->Execute(q)->count, 1u);  // The probe itself matches.
}

TEST_F(ConcealerE2ETest, ObliviousGroupedQueryMatchesOracle) {
  Query q;
  q.agg = Aggregate::kTopK;
  q.k = 3;
  q.time_lo = 10 * 3600;
  q.time_hi = 10 * 3600 + 30 * 60;
  q.oblivious = true;
  ExpectMatchesOracle(q);
}

// --- Security properties ---

TEST_F(ConcealerE2ETest, VolumeHiding_PointQueriesFetchIdenticalRowCounts) {
  // The defining guarantee: the number of rows the DBMS returns is the same
  // for *any* point query, regardless of how many tuples match.
  std::set<uint64_t> fetch_volumes;
  uint64_t min_matched = UINT64_MAX, max_matched = 0;
  for (uint64_t loc : {0ull, 3ull, 9ull, 15ull, 19ull}) {
    for (uint64_t t : {2ull * 3600, 13ull * 3600}) {
      auto got = sp_->Execute(PointQuery(loc, t));
      ASSERT_TRUE(got.ok());
      fetch_volumes.insert(got->rows_fetched);
      min_matched = std::min(min_matched, got->rows_matched);
      max_matched = std::max(max_matched, got->rows_matched);
    }
  }
  EXPECT_EQ(fetch_volumes.size(), 1u)
      << "point queries fetched different volumes";
  // The workload is skewed, so the hidden quantity really does vary.
  EXPECT_LT(min_matched, max_matched);
}

TEST_F(ConcealerE2ETest, VolumeHiding_WinSecRangeConstantAcrossSlides) {
  // Example 5.2.2's attack: sliding a window must not change the fetch
  // volume or reveal new-vs-old rows. winSecRange fetches whole intervals.
  Query q1 = RangeQuery(4, 8 * 3600, 10 * 3600, RangeMethod::kWinSecRange);
  Query q2 = RangeQuery(4, 9 * 3600, 11 * 3600, RangeMethod::kWinSecRange);
  auto r1 = sp_->Execute(q1);
  auto r2 = sp_->Execute(q2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  // Both 2h windows land in the same fixed interval set size; volumes are
  // multiples of the interval bin size.
  auto state = sp_->epoch_state(0);
  ASSERT_TRUE(state.ok());
  uint32_t lambda = config_->winsec_lambda_buckets;
  if (lambda == 0) lambda = std::max<uint32_t>(1, config_->time_buckets / 20);
  auto plan = (*state)->GetIntervalPlan(lambda);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(r1->rows_fetched % (*plan)->bin_size, 0u);
  EXPECT_EQ(r2->rows_fetched % (*plan)->bin_size, 0u);
}

TEST_F(ConcealerE2ETest, FakeTrapdoorsResolveToRealStoredRows) {
  // Every fake trapdoor must fetch an actual stored row (Example 4.1:
  // missing fakes would reveal bin composition).
  auto state = sp_->epoch_state(0);
  ASSERT_TRUE(state.ok());
  auto plan = (*state)->GetBinPlan(PackAlgorithm::kFirstFitDecreasing);
  ASSERT_TRUE(plan.ok());
  sp_->mutable_table().ResetStats();
  auto got = sp_->Execute(PointQuery(7, 6 * 3600));
  ASSERT_TRUE(got.ok());
  const TableStats& stats = sp_->table().stats();
  EXPECT_EQ(stats.index_probes, stats.index_hits)
      << "some trapdoors (fakes?) missed the index";
  EXPECT_EQ(got->rows_fetched, (*plan)->bin_size);
}

TEST_F(ConcealerE2ETest, ObliviousAndPlainModeAgree) {
  for (RangeMethod m :
       {RangeMethod::kBPB, RangeMethod::kEBPB, RangeMethod::kWinSecRange}) {
    Query q = RangeQuery(6, 14 * 3600, 14 * 3600 + 40 * 60, m);
    auto plain = sp_->Execute(q);
    q.oblivious = true;
    auto oblivious = sp_->Execute(q);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(oblivious.ok());
    EXPECT_EQ(plain->count, oblivious->count);
    EXPECT_EQ(plain->rows_fetched, oblivious->rows_fetched);
  }
}

// --- Authorization / client flows ---

TEST_F(ConcealerE2ETest, ClientEndToEnd) {
  Client alice("alice", Bytes{'a', 'l', 'i', 'c', 'e', '-', 's', 'e', 'c',
                              'r', 'e', 't'});
  Query q = PointQuery(3, 10 * 3600);
  auto got = alice.Run(sp_, q);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  auto want = oracle_->Execute(q);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(got->count, want->count);
}

TEST_F(ConcealerE2ETest, UnknownUserRejected) {
  Client mallory("mallory", Bytes{'x'});
  EXPECT_TRUE(mallory.Run(sp_, PointQuery(0, 0)).status()
                  .IsPermissionDenied());
}

TEST_F(ConcealerE2ETest, WrongSecretRejected) {
  Client fake_alice("alice", Bytes{'w', 'r', 'o', 'n', 'g'});
  EXPECT_TRUE(fake_alice.Run(sp_, PointQuery(0, 0)).status()
                  .IsPermissionDenied());
}

TEST_F(ConcealerE2ETest, IndividualizedQueryRestrictedToOwnObservation) {
  // Bob owns no observation: any individualized query is denied; Alice may
  // only ask about her own device.
  Client bob("bob", Bytes{'b', 'o', 'b', '-', 's', 'e', 'c', 'r', 'e', 't'});
  Query q;
  q.agg = Aggregate::kKeysWithObservation;
  q.observation = (*tuples_)[0].observation;
  q.time_lo = 0;
  q.time_hi = 86399;
  EXPECT_TRUE(bob.Run(sp_, q).status().IsPermissionDenied());

  Client alice("alice", Bytes{'a', 'l', 'i', 'c', 'e', '-', 's', 'e', 'c',
                              'r', 'e', 't'});
  auto got = alice.Run(sp_, q);
  ASSERT_TRUE(got.ok());
  q.observation = "dev-does-not-belong-to-alice";
  EXPECT_TRUE(alice.Run(sp_, q).status().IsPermissionDenied());
}

// --- Opaque baseline agreement ---

TEST_F(ConcealerE2ETest, OpaqueBaselineAgreesWithOracleAndConcealer) {
  OpaqueScanBaseline opaque(&sp_->enclave(), &sp_->table(), *config_);
  Query q = RangeQuery(5, 9 * 3600, 10 * 3600, RangeMethod::kBPB);
  auto via_opaque = opaque.Execute(sp_->EpochRowRanges(), q);
  ASSERT_TRUE(via_opaque.ok()) << via_opaque.status().ToString();
  auto want = oracle_->Execute(q);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(via_opaque->count, want->count);
  // Opaque reads the entire table; Concealer reads one bin's worth.
  auto via_concealer = sp_->Execute(q);
  ASSERT_TRUE(via_concealer.ok());
  EXPECT_GT(via_opaque->rows_fetched, 10 * via_concealer->rows_fetched);
}

// --- Integrity ---

class TamperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = TestConfig();
    WifiConfig wifi = TestWorkload();
    wifi.total_rows = 800;
    wifi.duration_seconds = 86400;
    WifiGenerator gen(wifi);
    tuples_ = gen.Generate();
    dp_ = std::make_unique<DataProvider>(config_, Bytes(32, 0x55));
    sp_ = std::make_unique<ServiceProvider>(config_, dp_->shared_secret());
    auto epochs = dp_->EncryptAll(tuples_);
    ASSERT_TRUE(epochs.ok());
    for (const auto& e : *epochs) ASSERT_TRUE(sp_->IngestEpoch(e).ok());
  }

  Query WholeEpochVerifyQuery() {
    Query q;
    q.agg = Aggregate::kCount;
    q.time_lo = 0;
    q.time_hi = 86399;
    q.verify = true;
    return q;
  }

  ConcealerConfig config_;
  std::vector<PlainTuple> tuples_;
  std::unique_ptr<DataProvider> dp_;
  std::unique_ptr<ServiceProvider> sp_;
};

TEST_F(TamperTest, CleanDataVerifies) {
  auto got = sp_->Execute(WholeEpochVerifyQuery());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->verified);
  EXPECT_EQ(got->rows_matched, tuples_.size());
}

TEST_F(TamperTest, FlippedCiphertextByteDetected) {
  // Corrupt one stored row's El column.
  Row corrupted;
  uint64_t victim = 0;
  uint64_t idx = 0;
  sp_->mutable_table().Scan([&](const Row& row) {
    corrupted = row;
    victim = idx++;
    return false;  // Take row 0.
  });
  corrupted.columns[kColEl][20] ^= 1;
  ASSERT_TRUE(sp_->mutable_table().ReplaceRows({{victim, corrupted}}).ok());

  auto got = sp_->Execute(WholeEpochVerifyQuery());
  EXPECT_TRUE(got.status().IsCorruption()) << got.status().ToString();
}

TEST_F(TamperTest, CrossRowContentSpliceDetected) {
  // Splice one row's El ciphertext into another row (a replay of valid
  // ciphertext in the wrong position): the per-cell-id chains break.
  std::vector<std::pair<uint64_t, Row>> rows;
  uint64_t idx = 0;
  sp_->mutable_table().Scan([&](const Row& row) {
    rows.emplace_back(idx++, row);
    return rows.size() < 2;
  });
  ASSERT_EQ(rows.size(), 2u);
  rows[0].second.columns[kColEl] = rows[1].second.columns[kColEl];
  ASSERT_TRUE(sp_->mutable_table()
                  .ReplaceRows({{rows[0].first, rows[0].second}})
                  .ok());

  auto got = sp_->Execute(WholeEpochVerifyQuery());
  EXPECT_TRUE(got.status().IsCorruption()) << got.status().ToString();
}

TEST_F(TamperTest, PhysicalRelocationIsHarmlessAndUndetected) {
  // Swapping two rows *with* their index entries is a physical relocation,
  // not tampering: trapdoor fetches return identical content, chains still
  // verify, answers unchanged. Documents the integrity model's scope.
  std::vector<std::pair<uint64_t, Row>> rows;
  uint64_t idx = 0;
  sp_->mutable_table().Scan([&](const Row& row) {
    rows.emplace_back(idx++, row);
    return rows.size() < 2;
  });
  ASSERT_EQ(rows.size(), 2u);
  std::swap(rows[0].first, rows[1].first);
  ASSERT_TRUE(sp_->mutable_table().ReindexRows(rows).ok());

  auto got = sp_->Execute(WholeEpochVerifyQuery());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->verified);
  EXPECT_EQ(got->rows_matched, tuples_.size());
}

TEST_F(TamperTest, UnverifiedQueryDoesNotNoticeTampering) {
  // Without the optional verification step the (wrong) answer comes back —
  // this documents that verification is what provides integrity.
  Row corrupted;
  sp_->mutable_table().Scan([&](const Row& row) {
    corrupted = row;
    return false;
  });
  corrupted.columns[kColEl][20] ^= 1;
  ASSERT_TRUE(sp_->mutable_table().ReplaceRows({{0, corrupted}}).ok());
  Query q = WholeEpochVerifyQuery();
  q.verify = false;
  EXPECT_TRUE(sp_->Execute(q).ok());
}

// --- Dynamic insertion (§6) ---

class DynamicTest : public TamperTest {};

TEST_F(DynamicTest, QueriesStillCorrectAcrossReencryptionRounds) {
  sp_->set_dynamic_mode(true);
  CleartextDb oracle(config_.time_quantum);
  oracle.Insert(tuples_);

  Query q;
  q.agg = Aggregate::kCount;
  q.key_values = {{4}};
  q.time_lo = 8 * 3600;
  q.time_hi = 9 * 3600;
  const uint64_t want = oracle.Execute(q)->count;

  // Repeated execution keeps answering correctly while bins get rewritten
  // under fresh keys each time.
  for (int round = 0; round < 4; ++round) {
    auto got = sp_->Execute(q);
    ASSERT_TRUE(got.ok()) << "round " << round << ": "
                          << got.status().ToString();
    EXPECT_EQ(got->count, want) << "round " << round;
  }
  auto state = sp_->epoch_state(0);
  ASSERT_TRUE(state.ok());
  EXPECT_GT((*state)->reenc_counter(), 0u);
}

TEST_F(DynamicTest, ReencryptionRewritesCiphertexts) {
  sp_->set_dynamic_mode(true);
  // Snapshot all index keys, run one query, snapshot again: the touched
  // bins' rows must have new index ciphertexts.
  std::set<Bytes> before;
  sp_->mutable_table().Scan([&](const Row& row) {
    before.insert(row.columns[kColIndex].ToBytes());
    return true;
  });
  Query q;
  q.agg = Aggregate::kCount;
  q.key_values = {{2}};
  q.time_lo = 12 * 3600;
  q.time_hi = 12 * 3600;
  ASSERT_TRUE(sp_->Execute(q).ok());
  uint64_t changed = 0;
  sp_->mutable_table().Scan([&](const Row& row) {
    changed += before.count(row.columns[kColIndex].ToBytes()) == 0 ? 1 : 0;
    return true;
  });
  EXPECT_GT(changed, 0u) << "no rows were re-encrypted";
}

TEST_F(DynamicTest, VerificationSurvivesReencryption) {
  sp_->set_dynamic_mode(true);
  Query q;
  q.agg = Aggregate::kCount;
  q.key_values = {{1}};
  q.time_lo = 10 * 3600;
  q.time_hi = 11 * 3600;
  q.verify = true;
  for (int round = 0; round < 3; ++round) {
    auto got = sp_->Execute(q);
    ASSERT_TRUE(got.ok()) << "round " << round << ": "
                          << got.status().ToString();
    EXPECT_TRUE(got->verified);
  }
}

TEST_F(DynamicTest, EveryRoundFetchesAtLeastLogBins) {
  sp_->set_dynamic_mode(true);
  auto state = sp_->epoch_state(0);
  ASSERT_TRUE(state.ok());
  auto plan = (*state)->GetBinPlan(PackAlgorithm::kFirstFitDecreasing);
  ASSERT_TRUE(plan.ok());
  const uint32_t num_bins = static_cast<uint32_t>((*plan)->bins.size());
  if (num_bins < 4) GTEST_SKIP() << "too few bins to observe padding";

  sp_->mutable_table().ResetStats();
  Query q;
  q.agg = Aggregate::kCount;
  q.key_values = {{3}};
  q.time_lo = 5 * 3600;
  q.time_hi = 5 * 3600;  // Point query: needs exactly one bin.
  ASSERT_TRUE(sp_->Execute(q).ok());
  // Fetched rows must cover >= ceil(log2(num_bins)) bins' volume.
  const uint32_t log_bins = static_cast<uint32_t>(
      std::ceil(std::log2(static_cast<double>(num_bins))));
  EXPECT_GE(sp_->table().stats().rows_fetched,
            uint64_t{log_bins} * (*plan)->bin_size);
}

// --- Super-bins (§8) ---

TEST_F(TamperTest, SuperBinRoutingPreservesAnswers) {
  auto state = sp_->epoch_state(0);
  ASSERT_TRUE(state.ok());
  auto plan = (*state)->GetBinPlan(PackAlgorithm::kFirstFitDecreasing);
  ASSERT_TRUE(plan.ok());
  const uint32_t num_bins = static_cast<uint32_t>((*plan)->bins.size());
  // Find a nontrivial factor of num_bins (fall back to 1).
  uint32_t f = 1;
  for (uint32_t cand = 2; cand <= num_bins / 2; ++cand) {
    if (num_bins % cand == 0) {
      f = cand;
      break;
    }
  }
  CleartextDb oracle(config_.time_quantum);
  oracle.Insert(tuples_);

  Query q;
  q.agg = Aggregate::kCount;
  q.key_values = {{6}};
  q.time_lo = 7 * 3600;
  q.time_hi = 8 * 3600;

  auto without = sp_->Execute(q);
  ASSERT_TRUE(without.ok());
  sp_->set_super_bin_factor(f);
  auto with = sp_->Execute(q);
  ASSERT_TRUE(with.ok()) << with.status().ToString();
  sp_->set_super_bin_factor(0);

  EXPECT_EQ(with->count, oracle.Execute(q)->count);
  EXPECT_EQ(with->count, without->count);
  if (f > 1) {
    // Super-bin fetches at least as much as the plain bin fetch.
    EXPECT_GE(with->rows_fetched, without->rows_fetched);
  }
}

// --- Parallel fetch path ---

// The thread-pool path must be a pure performance change: for every range
// method, aggregate shape and mode, the parallel executor's answer must be
// byte-identical (serialized QueryResult) to the serial one.
TEST_F(ConcealerE2ETest, ParallelExecutionMatchesSerialByteForByte) {
  std::vector<Query> queries;
  for (RangeMethod method : {RangeMethod::kBPB, RangeMethod::kEBPB,
                             RangeMethod::kWinSecRange}) {
    queries.push_back(RangeQuery(4, 2 * 3600, 9 * 3600, method));
    Query topk = RangeQuery(0, 3 * 3600, 6 * 3600, method);
    topk.agg = Aggregate::kTopK;
    topk.key_values.clear();  // Whole-domain Q2.
    topk.k = 4;
    queries.push_back(topk);
    Query verified = RangeQuery(7, 86400 + 3600, 86400 + 5 * 3600, method);
    verified.verify = true;
    queries.push_back(verified);
    Query oblivious = RangeQuery(2, 4 * 3600, 7 * 3600, method);
    oblivious.oblivious = true;
    queries.push_back(oblivious);
  }

  for (const Query& q : queries) {
    sp_->set_num_threads(1);
    auto serial = sp_->Execute(q);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (uint32_t threads : {2u, 4u}) {
      sp_->set_num_threads(threads);
      auto parallel = sp_->Execute(q);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      EXPECT_EQ(SerializeQueryResult(*serial), SerializeQueryResult(*parallel))
          << "method=" << static_cast<int>(q.method)
          << " agg=" << static_cast<int>(q.agg) << " verify=" << q.verify
          << " oblivious=" << q.oblivious << " threads=" << threads;
    }
  }
  sp_->set_num_threads(1);
}

// Repeated parallel runs of one query must be deterministic (no
// merge-order or dedup races).
TEST_F(ConcealerE2ETest, ParallelExecutionIsDeterministic) {
  Query q = RangeQuery(5, 3600, 10 * 3600, RangeMethod::kWinSecRange);
  sp_->set_num_threads(4);
  auto first = sp_->Execute(q);
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 5; ++i) {
    auto again = sp_->Execute(q);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(SerializeQueryResult(*first), SerializeQueryResult(*again));
  }
  sp_->set_num_threads(1);
}

// --- Crypto backend equivalence (the tentpole's correctness contract) ---
//
// Runs the full DP -> SP -> query pipeline once under the forced software
// AES backend and once under the hardware backend, and byte-compares the
// serialized epochs (ciphertexts + trapdoor-matchable Index columns) and
// every query answer. This is what "hardware acceleration changes timing,
// never bytes" means operationally.
TEST(CryptoBackendEquivalenceTest, PipelineBytesIdenticalAcrossBackends) {
  if (AcceleratedAesBackend() == nullptr) {
    GTEST_SKIP() << "no hardware AES on this CPU";
  }
  ConcealerConfig config = TestConfig();
  WifiConfig wifi = TestWorkload();
  wifi.total_rows = 1200;  // Smaller than the shared fixture: runs twice.
  WifiGenerator gen(wifi);
  const std::vector<PlainTuple> tuples = gen.Generate();

  struct PipelineBytes {
    std::vector<Bytes> epoch_blobs;
    std::vector<Bytes> answers;
  };
  auto run = [&](const AesBackendOps* backend) {
    ScopedAesBackendOverride forced(backend);
    PipelineBytes out;
    DataProvider dp(config, Bytes(32, 0x42));
    ServiceProvider sp(config, dp.shared_secret());
    auto epochs = dp.EncryptAll(tuples);
    EXPECT_TRUE(epochs.ok());
    for (const auto& epoch : *epochs) {
      out.epoch_blobs.push_back(SerializeEpoch(epoch));
      EXPECT_TRUE(sp.IngestEpoch(epoch).ok());
    }
    std::vector<Query> queries;
    queries.push_back(PointQuery(7, 7200));
    queries.push_back(
        RangeQuery(3, 3600, 8 * 3600, RangeMethod::kWinSecRange));
    Query sum = PointQuery(7, 7200);
    sum.agg = Aggregate::kSum;  // Exercises the batched Er decrypt path.
    sum.time_lo = 0;
    sum.time_hi = 86399;
    queries.push_back(sum);
    Query obl = PointQuery(5, 3600);
    obl.oblivious = true;
    obl.verify = true;
    queries.push_back(obl);
    for (const Query& q : queries) {
      auto r = sp.Execute(q);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      out.answers.push_back(SerializeQueryResult(*r));
    }
    return out;
  };

  const PipelineBytes soft = run(SoftAesBackend());
  const PipelineBytes accel = run(AcceleratedAesBackend());
  ASSERT_EQ(soft.epoch_blobs.size(), accel.epoch_blobs.size());
  for (size_t i = 0; i < soft.epoch_blobs.size(); ++i) {
    EXPECT_EQ(soft.epoch_blobs[i], accel.epoch_blobs[i])
        << "epoch " << i << " ciphertext bytes differ across backends";
  }
  ASSERT_EQ(soft.answers.size(), accel.answers.size());
  for (size_t i = 0; i < soft.answers.size(); ++i) {
    EXPECT_EQ(soft.answers[i], accel.answers[i]) << "query " << i;
  }
}

}  // namespace
}  // namespace concealer
