// Unit tests for the crypto substrate, including FIPS/RFC known-answer
// tests for AES, SHA-256, HMAC and CMAC, and behavioural tests for the
// deterministic (SIV) and randomized ciphers.

#include <gtest/gtest.h>

#include <set>

#include "common/hex.h"
#include "crypto/aes.h"
#include "crypto/cmac.h"
#include "crypto/det_cipher.h"
#include "crypto/grid_hash.h"
#include "crypto/hmac.h"
#include "crypto/kdf.h"
#include "crypto/rand_cipher.h"
#include "crypto/sha256.h"

namespace concealer {
namespace {

Bytes FromHex(const std::string& h) {
  auto r = HexDecode(h);
  EXPECT_TRUE(r.ok()) << h;
  return *r;
}

// --- AES known-answer tests (FIPS-197 Appendix C) ---

TEST(AesTest, Fips197Aes128) {
  Aes aes;
  ASSERT_TRUE(aes.SetKey(FromHex("000102030405060708090a0b0c0d0e0f")).ok());
  const Bytes pt = FromHex("00112233445566778899aabbccddeeff");
  uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexEncode(Slice(ct, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
  uint8_t back[16];
  aes.DecryptBlock(ct, back);
  EXPECT_EQ(HexEncode(Slice(back, 16)), HexEncode(pt));
}

TEST(AesTest, Fips197Aes256) {
  Aes aes;
  ASSERT_TRUE(aes.SetKey(FromHex("000102030405060708090a0b0c0d0e0f"
                                 "101112131415161718191a1b1c1d1e1f"))
                  .ok());
  const Bytes pt = FromHex("00112233445566778899aabbccddeeff");
  uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexEncode(Slice(ct, 16)), "8ea2b7ca516745bfeafc49904b496089");
  uint8_t back[16];
  aes.DecryptBlock(ct, back);
  EXPECT_EQ(HexEncode(Slice(back, 16)), HexEncode(pt));
}

TEST(AesTest, RejectsBadKeySizes) {
  Aes aes;
  EXPECT_FALSE(aes.SetKey(Bytes(15, 0)).ok());
  EXPECT_FALSE(aes.SetKey(Bytes(24, 0)).ok());  // AES-192 unsupported.
  EXPECT_FALSE(aes.SetKey(Bytes(0, 0)).ok());
  EXPECT_TRUE(aes.SetKey(Bytes(16, 0)).ok());
  EXPECT_TRUE(aes.SetKey(Bytes(32, 0)).ok());
}

TEST(AesTest, EncryptDecryptRoundTripRandomBlocks) {
  Aes aes;
  ASSERT_TRUE(aes.SetKey(Bytes(32, 0x5a)).ok());
  uint8_t block[16], ct[16], back[16];
  for (int trial = 0; trial < 64; ++trial) {
    for (int i = 0; i < 16; ++i) block[i] = uint8_t(trial * 16 + i);
    aes.EncryptBlock(block, ct);
    aes.DecryptBlock(ct, back);
    EXPECT_EQ(0, memcmp(block, back, 16));
  }
}

TEST(AesTest, CtrModeNistVector) {
  // NIST SP 800-38A F.5.1 (AES-128 CTR), first block.
  Aes aes;
  ASSERT_TRUE(aes.SetKey(FromHex("2b7e151628aed2a6abf7158809cf4f3c")).ok());
  const Bytes iv = FromHex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes pt = FromHex("6bc1bee22e409f96e93d7e117393172a");
  Bytes ct(pt.size());
  AesCtrXor(aes, iv.data(), pt, ct.data());
  EXPECT_EQ(HexEncode(ct), "874d6191b620e3261bef6864990db6ce");
}

TEST(AesTest, CtrIsLengthPreservingAndInvolutive) {
  Aes aes;
  ASSERT_TRUE(aes.SetKey(Bytes(32, 7)).ok());
  uint8_t iv[16] = {1, 2, 3};
  for (size_t len : {0u, 1u, 15u, 16u, 17u, 100u}) {
    Bytes pt(len, 0xab);
    Bytes ct(len);
    AesCtrXor(aes, iv, pt, ct.data());
    Bytes back(len);
    AesCtrXor(aes, iv, ct, back.data());
    EXPECT_EQ(back, pt) << len;
  }
}

// --- SHA-256 known-answer tests (FIPS-180-4 / NIST CAVP) ---

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HexEncode(Slice(Sha256::Hash(Slice()).data(), 32)),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HexEncode(Slice(Sha256::Hash(Slice("abc", 3)).data(), 32)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  const std::string msg =
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  EXPECT_EQ(HexEncode(Slice(Sha256::Hash(Slice(msg)).data(), 32)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(Slice(chunk));
  EXPECT_EQ(HexEncode(Slice(h.Finish().data(), 32)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, StreamingMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.Update(Slice(msg.data(), split));
    h.Update(Slice(msg.data() + split, msg.size() - split));
    EXPECT_EQ(h.Finish(), Sha256::Hash(Slice(msg))) << split;
  }
}

TEST(Sha256Test, ReusableAfterFinish) {
  Sha256 h;
  h.Update(Slice("abc", 3));
  const auto d1 = h.Finish();
  h.Update(Slice("abc", 3));
  const auto d2 = h.Finish();
  EXPECT_EQ(d1, d2);
}

// --- HMAC-SHA256 (RFC 4231) ---

TEST(HmacTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const auto tag = HmacSha256::Compute(key, Slice("Hi There", 8));
  EXPECT_EQ(HexEncode(Slice(tag.data(), 32)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  const auto tag = HmacSha256::Compute(
      Slice("Jefe", 4), Slice("what do ya want for nothing?", 28));
  EXPECT_EQ(HexEncode(Slice(tag.data(), 32)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  const std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  const auto tag = HmacSha256::Compute(key, Slice(msg));
  EXPECT_EQ(HexEncode(Slice(tag.data(), 32)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, ConstantTimeEqual) {
  const Bytes a{1, 2, 3}, b{1, 2, 3}, c{1, 2, 4}, d{1, 2};
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
  EXPECT_FALSE(ConstantTimeEqual(a, d));
}

// --- AES-CMAC (RFC 4493) ---

TEST(CmacTest, Rfc4493EmptyMessage) {
  AesCmac cmac;
  ASSERT_TRUE(cmac.SetKey(FromHex("2b7e151628aed2a6abf7158809cf4f3c")).ok());
  const auto tag = cmac.Compute(Slice());
  EXPECT_EQ(HexEncode(Slice(tag.data(), 16)),
            "bb1d6929e95937287fa37d129b756746");
}

TEST(CmacTest, Rfc4493SixteenBytes) {
  AesCmac cmac;
  ASSERT_TRUE(cmac.SetKey(FromHex("2b7e151628aed2a6abf7158809cf4f3c")).ok());
  const auto tag = cmac.Compute(FromHex("6bc1bee22e409f96e93d7e117393172a"));
  EXPECT_EQ(HexEncode(Slice(tag.data(), 16)),
            "070a16b46b4d4144f79bdd9dd04a287c");
}

TEST(CmacTest, Rfc4493FortyBytes) {
  AesCmac cmac;
  ASSERT_TRUE(cmac.SetKey(FromHex("2b7e151628aed2a6abf7158809cf4f3c")).ok());
  const auto tag = cmac.Compute(
      FromHex("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51"
              "30c81c46a35ce411"));
  EXPECT_EQ(HexEncode(Slice(tag.data(), 16)),
            "dfa66747de9ae63030ca32611497c827");
}

// --- KDF ---

TEST(KdfTest, DistinctLabelsAndContextsGiveDistinctKeys) {
  const Bytes master(32, 1);
  const Bytes k1 = DeriveKey64(master, "a", 0);
  const Bytes k2 = DeriveKey64(master, "a", 1);
  const Bytes k3 = DeriveKey64(master, "b", 0);
  EXPECT_NE(k1, k2);
  EXPECT_NE(k1, k3);
  EXPECT_NE(k2, k3);
  EXPECT_EQ(k1.size(), 32u);
  EXPECT_EQ(k1, DeriveKey64(master, "a", 0));  // Deterministic.
}

TEST(KdfTest, EpochKeysDifferPerEpochAndCounter) {
  const Bytes sk(32, 9);
  EXPECT_NE(EpochKey(sk, 1), EpochKey(sk, 2));
  EXPECT_NE(EpochKey(sk, 1, 0), EpochKey(sk, 1, 1));
  EXPECT_EQ(EpochKey(sk, 1, 0), EpochKey(sk, 1, 0));
}

// --- DetCipher ---

TEST(DetCipherTest, Deterministic) {
  DetCipher c;
  ASSERT_TRUE(c.SetKey(Bytes(32, 3)).ok());
  const Bytes ct1 = c.Encrypt(Slice("value", 5));
  const Bytes ct2 = c.Encrypt(Slice("value", 5));
  EXPECT_EQ(ct1, ct2);
  EXPECT_NE(ct1, c.Encrypt(Slice("valuf", 5)));
}

TEST(DetCipherTest, RoundTrip) {
  DetCipher c;
  ASSERT_TRUE(c.SetKey(Bytes(32, 3)).ok());
  for (size_t len : {0u, 1u, 16u, 33u, 100u}) {
    const Bytes pt(len, 0x42);
    auto back = c.Decrypt(c.Encrypt(pt));
    ASSERT_TRUE(back.ok()) << len;
    EXPECT_EQ(*back, pt);
  }
}

TEST(DetCipherTest, DetectsTampering) {
  DetCipher c;
  ASSERT_TRUE(c.SetKey(Bytes(32, 3)).ok());
  Bytes ct = c.Encrypt(Slice("some plaintext", 14));
  ct[ct.size() / 2] ^= 1;
  EXPECT_TRUE(c.Decrypt(ct).status().IsCorruption());
  EXPECT_TRUE(c.Decrypt(Bytes(4, 0)).status().IsCorruption());  // Too short.
}

TEST(DetCipherTest, DifferentKeysDifferentCiphertext) {
  DetCipher a, b;
  ASSERT_TRUE(a.SetKey(Bytes(32, 1)).ok());
  ASSERT_TRUE(b.SetKey(Bytes(32, 2)).ok());
  EXPECT_NE(a.Encrypt(Slice("x", 1)), b.Encrypt(Slice("x", 1)));
}

TEST(DetCipherTest, RejectsBadKeySize) {
  DetCipher c;
  EXPECT_FALSE(c.SetKey(Bytes(16, 0)).ok());
}

// --- RandCipher ---

TEST(RandCipherTest, SamePlaintextDifferentCiphertext) {
  RandCipher c;
  ASSERT_TRUE(c.SetKey(Bytes(32, 4)).ok());
  const Bytes ct1 = c.Encrypt(Slice("secret", 6));
  const Bytes ct2 = c.Encrypt(Slice("secret", 6));
  EXPECT_NE(ct1, ct2);
  auto p1 = c.Decrypt(ct1);
  auto p2 = c.Decrypt(ct2);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(*p1, *p2);
}

TEST(RandCipherTest, DetectsTampering) {
  RandCipher c;
  ASSERT_TRUE(c.SetKey(Bytes(32, 4)).ok());
  Bytes ct = c.Encrypt(Slice("secret", 6));
  ct[RandCipher::kNonceSize] ^= 1;  // Flip a body bit.
  EXPECT_TRUE(c.Decrypt(ct).status().IsCorruption());
  EXPECT_TRUE(c.Decrypt(Bytes(8, 0)).status().IsCorruption());
}

TEST(RandCipherTest, RandomBytesUniqueAcrossCalls) {
  RandCipher c;
  ASSERT_TRUE(c.SetKey(Bytes(32, 4)).ok());
  const Bytes a = c.RandomBytes(32);
  const Bytes b = c.RandomBytes(32);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.size(), 32u);
}

TEST(RandCipherTest, CiphertextLengthIsPlaintextPlusOverhead) {
  RandCipher c;
  ASSERT_TRUE(c.SetKey(Bytes(32, 4)).ok());
  for (size_t len : {0u, 7u, 64u}) {
    EXPECT_EQ(c.Encrypt(Bytes(len, 0)).size(), len + RandCipher::kOverhead);
  }
}

// --- GridHash ---

TEST(GridHashTest, DeterministicAndInRange) {
  GridHash h;
  ASSERT_TRUE(h.SetKey(Bytes(32, 5)).ok());
  for (uint64_t v = 0; v < 100; ++v) {
    const uint32_t b1 = h.Map64(v, 17);
    const uint32_t b2 = h.Map64(v, 17);
    EXPECT_EQ(b1, b2);
    EXPECT_LT(b1, 17u);
  }
}

TEST(GridHashTest, DifferentKeysGiveDifferentMappings) {
  GridHash h1, h2;
  ASSERT_TRUE(h1.SetKey(Bytes(32, 1)).ok());
  ASSERT_TRUE(h2.SetKey(Bytes(32, 2)).ok());
  int same = 0;
  for (uint64_t v = 0; v < 256; ++v) {
    same += (h1.Map64(v, 1024) == h2.Map64(v, 1024));
  }
  EXPECT_LT(same, 10);
}

TEST(GridHashTest, RoughlyUniform) {
  GridHash h;
  ASSERT_TRUE(h.SetKey(Bytes(32, 5)).ok());
  std::vector<int> counts(10, 0);
  for (uint64_t v = 0; v < 10000; ++v) counts[h.Map64(v, 10)]++;
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

// Property sweep: DET uniqueness over distinct inputs (no SIV collisions in
// a modest sample).
class DetUniquenessTest : public ::testing::TestWithParam<int> {};

TEST_P(DetUniquenessTest, NoCollisionsAcrossDistinctPlaintexts) {
  DetCipher c;
  ASSERT_TRUE(c.SetKey(Bytes(32, uint8_t(GetParam()))).ok());
  std::set<Bytes> seen;
  for (uint32_t i = 0; i < 2000; ++i) {
    Bytes pt(4);
    pt[0] = i & 0xff;
    pt[1] = (i >> 8) & 0xff;
    pt[2] = uint8_t(GetParam());
    pt[3] = 0;
    EXPECT_TRUE(seen.insert(c.Encrypt(pt)).second);
  }
}

INSTANTIATE_TEST_SUITE_P(Keys, DetUniquenessTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace concealer
