// Unit tests for the crypto substrate, including FIPS/RFC known-answer
// tests for AES, SHA-256, HMAC and CMAC, and behavioural tests for the
// deterministic (SIV) and randomized ciphers.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/hex.h"
#include "common/random.h"
#include "crypto/aes.h"
#include "crypto/aes_backend.h"
#include "crypto/cmac.h"
#include "crypto/det_cipher.h"
#include "crypto/grid_hash.h"
#include "crypto/hmac.h"
#include "crypto/kdf.h"
#include "crypto/rand_cipher.h"
#include "crypto/sha256.h"

namespace concealer {
namespace {

Bytes FromHex(const std::string& h) {
  auto r = HexDecode(h);
  EXPECT_TRUE(r.ok()) << h;
  return *r;
}

// --- AES known-answer tests (FIPS-197 Appendix C) ---

TEST(AesTest, Fips197Aes128) {
  Aes aes;
  ASSERT_TRUE(aes.SetKey(FromHex("000102030405060708090a0b0c0d0e0f")).ok());
  const Bytes pt = FromHex("00112233445566778899aabbccddeeff");
  uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexEncode(Slice(ct, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
  uint8_t back[16];
  aes.DecryptBlock(ct, back);
  EXPECT_EQ(HexEncode(Slice(back, 16)), HexEncode(pt));
}

TEST(AesTest, Fips197Aes256) {
  Aes aes;
  ASSERT_TRUE(aes.SetKey(FromHex("000102030405060708090a0b0c0d0e0f"
                                 "101112131415161718191a1b1c1d1e1f"))
                  .ok());
  const Bytes pt = FromHex("00112233445566778899aabbccddeeff");
  uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexEncode(Slice(ct, 16)), "8ea2b7ca516745bfeafc49904b496089");
  uint8_t back[16];
  aes.DecryptBlock(ct, back);
  EXPECT_EQ(HexEncode(Slice(back, 16)), HexEncode(pt));
}

TEST(AesTest, RejectsBadKeySizes) {
  Aes aes;
  EXPECT_FALSE(aes.SetKey(Bytes(15, 0)).ok());
  EXPECT_FALSE(aes.SetKey(Bytes(24, 0)).ok());  // AES-192 unsupported.
  EXPECT_FALSE(aes.SetKey(Bytes(0, 0)).ok());
  EXPECT_TRUE(aes.SetKey(Bytes(16, 0)).ok());
  EXPECT_TRUE(aes.SetKey(Bytes(32, 0)).ok());
}

TEST(AesTest, EncryptDecryptRoundTripRandomBlocks) {
  Aes aes;
  ASSERT_TRUE(aes.SetKey(Bytes(32, 0x5a)).ok());
  uint8_t block[16], ct[16], back[16];
  for (int trial = 0; trial < 64; ++trial) {
    for (int i = 0; i < 16; ++i) block[i] = uint8_t(trial * 16 + i);
    aes.EncryptBlock(block, ct);
    aes.DecryptBlock(ct, back);
    EXPECT_EQ(0, memcmp(block, back, 16));
  }
}

TEST(AesTest, CtrModeNistVector) {
  // NIST SP 800-38A F.5.1 (AES-128 CTR), first block.
  Aes aes;
  ASSERT_TRUE(aes.SetKey(FromHex("2b7e151628aed2a6abf7158809cf4f3c")).ok());
  const Bytes iv = FromHex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes pt = FromHex("6bc1bee22e409f96e93d7e117393172a");
  Bytes ct(pt.size());
  AesCtrXor(aes, iv.data(), pt, ct.data());
  EXPECT_EQ(HexEncode(ct), "874d6191b620e3261bef6864990db6ce");
}

TEST(AesTest, CtrIsLengthPreservingAndInvolutive) {
  Aes aes;
  ASSERT_TRUE(aes.SetKey(Bytes(32, 7)).ok());
  uint8_t iv[16] = {1, 2, 3};
  for (size_t len : {0u, 1u, 15u, 16u, 17u, 100u}) {
    Bytes pt(len, 0xab);
    Bytes ct(len);
    AesCtrXor(aes, iv, pt, ct.data());
    Bytes back(len);
    AesCtrXor(aes, iv, ct, back.data());
    EXPECT_EQ(back, pt) << len;
  }
}

// --- SHA-256 known-answer tests (FIPS-180-4 / NIST CAVP) ---

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HexEncode(Slice(Sha256::Hash(Slice()).data(), 32)),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HexEncode(Slice(Sha256::Hash(Slice("abc", 3)).data(), 32)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  const std::string msg =
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  EXPECT_EQ(HexEncode(Slice(Sha256::Hash(Slice(msg)).data(), 32)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(Slice(chunk));
  EXPECT_EQ(HexEncode(Slice(h.Finish().data(), 32)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, StreamingMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.Update(Slice(msg.data(), split));
    h.Update(Slice(msg.data() + split, msg.size() - split));
    EXPECT_EQ(h.Finish(), Sha256::Hash(Slice(msg))) << split;
  }
}

TEST(Sha256Test, ReusableAfterFinish) {
  Sha256 h;
  h.Update(Slice("abc", 3));
  const auto d1 = h.Finish();
  h.Update(Slice("abc", 3));
  const auto d2 = h.Finish();
  EXPECT_EQ(d1, d2);
}

// --- HMAC-SHA256 (RFC 4231) ---

TEST(HmacTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const auto tag = HmacSha256::Compute(key, Slice("Hi There", 8));
  EXPECT_EQ(HexEncode(Slice(tag.data(), 32)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  const auto tag = HmacSha256::Compute(
      Slice("Jefe", 4), Slice("what do ya want for nothing?", 28));
  EXPECT_EQ(HexEncode(Slice(tag.data(), 32)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  const std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  const auto tag = HmacSha256::Compute(key, Slice(msg));
  EXPECT_EQ(HexEncode(Slice(tag.data(), 32)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, ConstantTimeEqual) {
  const Bytes a{1, 2, 3}, b{1, 2, 3}, c{1, 2, 4}, d{1, 2};
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
  EXPECT_FALSE(ConstantTimeEqual(a, d));
}

// --- AES-CMAC (RFC 4493) ---

TEST(CmacTest, Rfc4493EmptyMessage) {
  AesCmac cmac;
  ASSERT_TRUE(cmac.SetKey(FromHex("2b7e151628aed2a6abf7158809cf4f3c")).ok());
  const auto tag = cmac.Compute(Slice());
  EXPECT_EQ(HexEncode(Slice(tag.data(), 16)),
            "bb1d6929e95937287fa37d129b756746");
}

TEST(CmacTest, Rfc4493SixteenBytes) {
  AesCmac cmac;
  ASSERT_TRUE(cmac.SetKey(FromHex("2b7e151628aed2a6abf7158809cf4f3c")).ok());
  const auto tag = cmac.Compute(FromHex("6bc1bee22e409f96e93d7e117393172a"));
  EXPECT_EQ(HexEncode(Slice(tag.data(), 16)),
            "070a16b46b4d4144f79bdd9dd04a287c");
}

TEST(CmacTest, Rfc4493FortyBytes) {
  AesCmac cmac;
  ASSERT_TRUE(cmac.SetKey(FromHex("2b7e151628aed2a6abf7158809cf4f3c")).ok());
  const auto tag = cmac.Compute(
      FromHex("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51"
              "30c81c46a35ce411"));
  EXPECT_EQ(HexEncode(Slice(tag.data(), 16)),
            "dfa66747de9ae63030ca32611497c827");
}

// --- KDF ---

TEST(KdfTest, DistinctLabelsAndContextsGiveDistinctKeys) {
  const Bytes master(32, 1);
  const Bytes k1 = DeriveKey64(master, "a", 0);
  const Bytes k2 = DeriveKey64(master, "a", 1);
  const Bytes k3 = DeriveKey64(master, "b", 0);
  EXPECT_NE(k1, k2);
  EXPECT_NE(k1, k3);
  EXPECT_NE(k2, k3);
  EXPECT_EQ(k1.size(), 32u);
  EXPECT_EQ(k1, DeriveKey64(master, "a", 0));  // Deterministic.
}

TEST(KdfTest, EpochKeysDifferPerEpochAndCounter) {
  const Bytes sk(32, 9);
  EXPECT_NE(EpochKey(sk, 1), EpochKey(sk, 2));
  EXPECT_NE(EpochKey(sk, 1, 0), EpochKey(sk, 1, 1));
  EXPECT_EQ(EpochKey(sk, 1, 0), EpochKey(sk, 1, 0));
}

// --- DetCipher ---

TEST(DetCipherTest, Deterministic) {
  DetCipher c;
  ASSERT_TRUE(c.SetKey(Bytes(32, 3)).ok());
  const Bytes ct1 = c.Encrypt(Slice("value", 5));
  const Bytes ct2 = c.Encrypt(Slice("value", 5));
  EXPECT_EQ(ct1, ct2);
  EXPECT_NE(ct1, c.Encrypt(Slice("valuf", 5)));
}

TEST(DetCipherTest, RoundTrip) {
  DetCipher c;
  ASSERT_TRUE(c.SetKey(Bytes(32, 3)).ok());
  for (size_t len : {0u, 1u, 16u, 33u, 100u}) {
    const Bytes pt(len, 0x42);
    auto back = c.Decrypt(c.Encrypt(pt));
    ASSERT_TRUE(back.ok()) << len;
    EXPECT_EQ(*back, pt);
  }
}

TEST(DetCipherTest, DetectsTampering) {
  DetCipher c;
  ASSERT_TRUE(c.SetKey(Bytes(32, 3)).ok());
  Bytes ct = c.Encrypt(Slice("some plaintext", 14));
  ct[ct.size() / 2] ^= 1;
  EXPECT_TRUE(c.Decrypt(ct).status().IsCorruption());
  EXPECT_TRUE(c.Decrypt(Bytes(4, 0)).status().IsCorruption());  // Too short.
}

TEST(DetCipherTest, DifferentKeysDifferentCiphertext) {
  DetCipher a, b;
  ASSERT_TRUE(a.SetKey(Bytes(32, 1)).ok());
  ASSERT_TRUE(b.SetKey(Bytes(32, 2)).ok());
  EXPECT_NE(a.Encrypt(Slice("x", 1)), b.Encrypt(Slice("x", 1)));
}

TEST(DetCipherTest, RejectsBadKeySize) {
  DetCipher c;
  EXPECT_FALSE(c.SetKey(Bytes(16, 0)).ok());
}

// --- RandCipher ---

TEST(RandCipherTest, SamePlaintextDifferentCiphertext) {
  RandCipher c;
  ASSERT_TRUE(c.SetKey(Bytes(32, 4)).ok());
  const Bytes ct1 = c.Encrypt(Slice("secret", 6));
  const Bytes ct2 = c.Encrypt(Slice("secret", 6));
  EXPECT_NE(ct1, ct2);
  auto p1 = c.Decrypt(ct1);
  auto p2 = c.Decrypt(ct2);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(*p1, *p2);
}

TEST(RandCipherTest, DetectsTampering) {
  RandCipher c;
  ASSERT_TRUE(c.SetKey(Bytes(32, 4)).ok());
  Bytes ct = c.Encrypt(Slice("secret", 6));
  ct[RandCipher::kNonceSize] ^= 1;  // Flip a body bit.
  EXPECT_TRUE(c.Decrypt(ct).status().IsCorruption());
  EXPECT_TRUE(c.Decrypt(Bytes(8, 0)).status().IsCorruption());
}

TEST(RandCipherTest, RandomBytesUniqueAcrossCalls) {
  RandCipher c;
  ASSERT_TRUE(c.SetKey(Bytes(32, 4)).ok());
  const Bytes a = c.RandomBytes(32);
  const Bytes b = c.RandomBytes(32);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.size(), 32u);
}

TEST(RandCipherTest, CiphertextLengthIsPlaintextPlusOverhead) {
  RandCipher c;
  ASSERT_TRUE(c.SetKey(Bytes(32, 4)).ok());
  for (size_t len : {0u, 7u, 64u}) {
    EXPECT_EQ(c.Encrypt(Bytes(len, 0)).size(), len + RandCipher::kOverhead);
  }
}

// --- GridHash ---

TEST(GridHashTest, DeterministicAndInRange) {
  GridHash h;
  ASSERT_TRUE(h.SetKey(Bytes(32, 5)).ok());
  for (uint64_t v = 0; v < 100; ++v) {
    const uint32_t b1 = h.Map64(v, 17);
    const uint32_t b2 = h.Map64(v, 17);
    EXPECT_EQ(b1, b2);
    EXPECT_LT(b1, 17u);
  }
}

TEST(GridHashTest, DifferentKeysGiveDifferentMappings) {
  GridHash h1, h2;
  ASSERT_TRUE(h1.SetKey(Bytes(32, 1)).ok());
  ASSERT_TRUE(h2.SetKey(Bytes(32, 2)).ok());
  int same = 0;
  for (uint64_t v = 0; v < 256; ++v) {
    same += (h1.Map64(v, 1024) == h2.Map64(v, 1024));
  }
  EXPECT_LT(same, 10);
}

TEST(GridHashTest, RoughlyUniform) {
  GridHash h;
  ASSERT_TRUE(h.SetKey(Bytes(32, 5)).ok());
  std::vector<int> counts(10, 0);
  for (uint64_t v = 0; v < 10000; ++v) counts[h.Map64(v, 10)]++;
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

// --- AES backends: known-answer + differential coverage ---
//
// Every KAT below runs against each available backend (soft always; the
// hardware backend when the CPU has one), pinning the backend explicitly so
// CI on an AES-NI runner exercises both implementations in one pass.

std::vector<const AesBackendOps*> AllBackends() {
  std::vector<const AesBackendOps*> v = {SoftAesBackend()};
  if (AcceleratedAesBackend() != nullptr) v.push_back(AcceleratedAesBackend());
  return v;
}

class AesBackendTest
    : public ::testing::TestWithParam<const AesBackendOps*> {};

INSTANTIATE_TEST_SUITE_P(
    Backends, AesBackendTest, ::testing::ValuesIn(AllBackends()),
    [](const ::testing::TestParamInfo<const AesBackendOps*>& info) {
      return std::string(info.param->name);
    });

TEST_P(AesBackendTest, Fips197EcbKats) {
  Aes aes;
  ASSERT_TRUE(
      aes.SetKey(FromHex("000102030405060708090a0b0c0d0e0f"), GetParam())
          .ok());
  const Bytes pt = FromHex("00112233445566778899aabbccddeeff");
  uint8_t ct[16], back[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexEncode(Slice(ct, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
  aes.DecryptBlock(ct, back);
  EXPECT_EQ(HexEncode(Slice(back, 16)), HexEncode(pt));

  ASSERT_TRUE(aes.SetKey(FromHex("000102030405060708090a0b0c0d0e0f"
                                 "101112131415161718191a1b1c1d1e1f"),
                         GetParam())
                  .ok());
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexEncode(Slice(ct, 16)), "8ea2b7ca516745bfeafc49904b496089");
  aes.DecryptBlock(ct, back);
  EXPECT_EQ(HexEncode(Slice(back, 16)), HexEncode(pt));
}

TEST_P(AesBackendTest, NistSp80038aCtrAes128FullVector) {
  // NIST SP 800-38A F.5.1: AES-128 CTR, all four blocks in one call so the
  // multi-block pipeline is on the hook for the counter sequence.
  Aes aes;
  ASSERT_TRUE(
      aes.SetKey(FromHex("2b7e151628aed2a6abf7158809cf4f3c"), GetParam())
          .ok());
  const Bytes iv = FromHex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes pt = FromHex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  Bytes ct(pt.size());
  AesCtr::Xor(aes, iv.data(), pt, ct.data());
  EXPECT_EQ(HexEncode(ct),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff"
            "5ae4df3edbd5d35e5b4f09020db03eab"
            "1e031dda2fbe03d1792170a0f3009cee");
}

TEST_P(AesBackendTest, NistSp80038aCtrAes256FullVector) {
  // NIST SP 800-38A F.5.5: AES-256 CTR, all four blocks.
  Aes aes;
  ASSERT_TRUE(aes.SetKey(FromHex("603deb1015ca71be2b73aef0857d7781"
                                 "1f352c073b6108d72d9810a30914dff4"),
                         GetParam())
                  .ok());
  const Bytes iv = FromHex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes pt = FromHex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  Bytes ct(pt.size());
  AesCtr::Xor(aes, iv.data(), pt, ct.data());
  EXPECT_EQ(HexEncode(ct),
            "601ec313775789a5b7a7f504bbf3d228"
            "f443e3ca4d62b59aca84e990cacaf5c5"
            "2b0930daa23de94ce87017ba2d84988d"
            "dfc9c58db67aada613c2dd08457941a6");
}

TEST_P(AesBackendTest, Rfc4493CmacAllFourCases) {
  AesCmac cmac;
  ASSERT_TRUE(
      cmac.SetKey(FromHex("2b7e151628aed2a6abf7158809cf4f3c"), GetParam())
          .ok());
  const Bytes msg = FromHex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const struct {
    size_t len;
    const char* tag;
  } kCases[] = {
      {0, "bb1d6929e95937287fa37d129b756746"},
      {16, "070a16b46b4d4144f79bdd9dd04a287c"},
      {40, "dfa66747de9ae63030ca32611497c827"},
      {64, "51f0bebf7e3b9d92fc49741779363cfe"},
  };
  for (const auto& c : kCases) {
    const auto tag = cmac.Compute(Slice(msg.data(), c.len));
    EXPECT_EQ(HexEncode(Slice(tag.data(), 16)), c.tag) << c.len;
    EXPECT_TRUE(cmac.Verify(Slice(msg.data(), c.len), FromHex(c.tag)));
  }
}

TEST_P(AesBackendTest, EncryptBlocksMatchesPerBlockLoop) {
  Aes aes;
  ASSERT_TRUE(aes.SetKey(Bytes(32, 0x7e), GetParam()).ok());
  Rng rng(11);
  for (size_t nblocks : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 17u}) {
    Bytes in(nblocks * 16);
    for (auto& b : in) b = uint8_t(rng.Next());
    Bytes batch(in.size()), single(in.size());
    aes.EncryptBlocks(in.data(), batch.data(), nblocks);
    for (size_t b = 0; b < nblocks; ++b) {
      aes.EncryptBlock(in.data() + 16 * b, single.data() + 16 * b);
    }
    EXPECT_EQ(batch, single) << nblocks;
    // In-place batch.
    Bytes inplace = in;
    aes.EncryptBlocks(inplace.data(), inplace.data(), nblocks);
    EXPECT_EQ(inplace, batch) << nblocks;
  }
}

TEST_P(AesBackendTest, KeystreamAndInPlaceAgreeWithXor) {
  Aes aes;
  ASSERT_TRUE(aes.SetKey(Bytes(16, 0x31), GetParam()).ok());
  uint8_t iv[16] = {0xde, 0xad};
  for (size_t len : {0u, 1u, 15u, 16u, 17u, 63u, 64u, 65u, 127u, 128u, 300u}) {
    Bytes pt(len, 0x5a);
    Bytes ct(len);
    AesCtr::Xor(aes, iv, pt, ct.data());
    // Keystream == Xor over zeros.
    Bytes zeros(len, 0);
    Bytes ks_ref(len);
    AesCtr::Xor(aes, iv, zeros, ks_ref.data());
    Bytes ks(len);
    AesCtr::Keystream(aes, iv, ks.data(), len);
    EXPECT_EQ(ks, ks_ref) << len;
    // XorInPlace == Xor.
    Bytes buf = pt;
    AesCtr::XorInPlace(aes, iv, buf.data(), len);
    EXPECT_EQ(buf, ct) << len;
  }
}

TEST_P(AesBackendTest, CtrCounterOverflowBoundaries) {
  // The 128-bit big-endian counter must wrap identically on every backend,
  // including across the multi-block pipeline's internal batching. Start
  // IVs straddle the 2^128, 2^64 and one-byte carry boundaries.
  Aes aes;
  ASSERT_TRUE(aes.SetKey(Bytes(32, 0x09), GetParam()).ok());
  const char* kIvs[] = {
      "ffffffffffffffffffffffffffffffff",  // Wraps to zero after 1 block.
      "fffffffffffffffffffffffffffffff0",  // Wraps mid-buffer.
      "0000000000000000ffffffffffffffff",  // Low-qword carry into high.
      "00000000000000000000000000000000",
      "000000000000000000000000000000ff",
  };
  for (const char* ivh : kIvs) {
    const Bytes iv = FromHex(ivh);
    const size_t len = 16 * 20 + 5;  // Past any pipeline batch width.
    Bytes pt(len, 0xc3);
    Bytes got(len);
    AesCtr::Xor(aes, iv.data(), pt, got.data());
    // Reference: one block at a time through EncryptBlock with a scalar
    // big-endian increment.
    Bytes want(len);
    uint8_t ctr[16], ks[16];
    std::memcpy(ctr, iv.data(), 16);
    for (size_t off = 0; off < len; off += 16) {
      aes.EncryptBlock(ctr, ks);
      for (int i = 15; i >= 0; --i) {
        if (++ctr[i] != 0) break;
      }
      const size_t n = len - off < 16 ? len - off : 16;
      for (size_t i = 0; i < n; ++i) want[off + i] = pt[off + i] ^ ks[i];
    }
    EXPECT_EQ(got, want) << ivh;
  }
}

TEST(AesBackendDifferentialTest, SoftAndAcceleratedAgreeOnRandomInputs) {
  const AesBackendOps* accel = AcceleratedAesBackend();
  if (accel == nullptr) {
    GTEST_SKIP() << "no hardware AES on this CPU";
  }
  Rng rng(2026);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes key((trial % 2) ? 16 : 32);
    for (auto& b : key) b = uint8_t(rng.Next());
    Aes soft_aes, accel_aes;
    ASSERT_TRUE(soft_aes.SetKey(key, SoftAesBackend()).ok());
    ASSERT_TRUE(accel_aes.SetKey(key, accel).ok());

    // Odd lengths on purpose: partial final blocks are where byte-level
    // tail handling diverges first.
    const size_t len = rng.Uniform(2 * 16 * 8 + 3);
    Bytes pt(len);
    for (auto& b : pt) b = uint8_t(rng.Next());
    uint8_t iv[16];
    for (auto& b : iv) b = uint8_t(rng.Next());
    if (trial % 5 == 0) {
      // Park the counter just below an overflow boundary.
      std::memset(iv, 0xff, sizeof(iv));
      iv[15] = static_cast<uint8_t>(0xff - rng.Uniform(4));
    }

    Bytes ct_soft(len), ct_accel(len);
    AesCtr::Xor(soft_aes, iv, pt, ct_soft.data());
    AesCtr::Xor(accel_aes, iv, pt, ct_accel.data());
    ASSERT_EQ(ct_soft, ct_accel) << "trial " << trial << " len " << len;

    uint8_t blk_soft[16], blk_accel[16];
    soft_aes.EncryptBlock(iv, blk_soft);
    accel_aes.EncryptBlock(iv, blk_accel);
    ASSERT_EQ(0, memcmp(blk_soft, blk_accel, 16));
    soft_aes.DecryptBlock(blk_soft, blk_soft);
    accel_aes.DecryptBlock(blk_accel, blk_accel);
    ASSERT_EQ(0, memcmp(blk_soft, blk_accel, 16));
    ASSERT_EQ(0, memcmp(blk_soft, iv, 16));
  }
}

// --- Batched crypto APIs ---

TEST(CmacBatchTest, ComputeBatchMatchesSingleAcrossMixedLengths) {
  AesCmac cmac;
  ASSERT_TRUE(cmac.SetKey(Bytes(32, 0x21)).ok());
  Rng rng(5);
  // Mixed-length batches exercise the lane-dropout path of the lockstep
  // pipeline (lanes finish their chains at different steps).
  std::vector<size_t> lens = {0, 1, 15, 16, 17, 31, 32, 33, 100,
                              0, 64, 128, 7, 200, 16, 48};
  std::vector<Bytes> msgs;
  for (size_t len : lens) {
    Bytes m(len);
    for (auto& b : m) b = uint8_t(rng.Next());
    msgs.push_back(std::move(m));
  }
  std::vector<Slice> views(msgs.begin(), msgs.end());
  std::vector<AesCmac::Tag> tags(msgs.size());
  cmac.ComputeBatch(views.data(), views.size(), tags.data());
  for (size_t i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(tags[i], cmac.Compute(msgs[i])) << i;
  }
}

TEST(CmacBatchTest, VerifyBatchFlagsTamperedTags) {
  AesCmac cmac;
  ASSERT_TRUE(cmac.SetKey(Bytes(16, 0x44)).ok());
  std::vector<Bytes> msgs;
  std::vector<AesCmac::Tag> tags(10);
  for (int i = 0; i < 10; ++i) msgs.emplace_back(i * 7, uint8_t(i));
  std::vector<Slice> views(msgs.begin(), msgs.end());
  cmac.ComputeBatch(views.data(), views.size(), tags.data());
  std::vector<Slice> tag_views;
  for (auto& t : tags) tag_views.emplace_back(t.data(), t.size());
  tags[3][0] ^= 1;
  tags[7][15] ^= 0x80;
  uint8_t ok[10];
  EXPECT_EQ(cmac.VerifyBatch(views.data(), tag_views.data(), 10, ok), 8u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ok[i], (i == 3 || i == 7) ? 0 : 1) << i;
  }
}

TEST(DetCipherBatchTest, EncryptBatchMatchesSingle) {
  DetCipher det;
  ASSERT_TRUE(det.SetKey(Bytes(32, 0x66)).ok());
  std::vector<Bytes> plains;
  for (size_t len : {0u, 1u, 13u, 16u, 29u, 64u, 100u, 13u, 13u}) {
    plains.emplace_back(len, uint8_t(len * 3 + 1));
  }
  std::vector<Slice> views(plains.begin(), plains.end());
  std::vector<Bytes> outs(plains.size());
  det.EncryptBatch(views.data(), views.size(), outs.data());
  for (size_t i = 0; i < plains.size(); ++i) {
    EXPECT_EQ(outs[i], det.Encrypt(plains[i])) << i;
  }
}

TEST(DetCipherBatchTest, DecryptBatchRoundTripsAndRejectsTampering) {
  DetCipher det;
  ASSERT_TRUE(det.SetKey(Bytes(32, 0x67)).ok());
  std::vector<Bytes> plains, cts;
  for (size_t len : {5u, 29u, 0u, 64u, 13u, 45u, 29u, 29u, 29u, 17u}) {
    plains.emplace_back(len, uint8_t(0xa0 + len));
    cts.push_back(det.Encrypt(plains.back()));
  }
  std::vector<Slice> views(cts.begin(), cts.end());
  std::vector<Bytes> outs(cts.size());
  ASSERT_TRUE(det.DecryptBatch(views.data(), views.size(), outs.data()).ok());
  for (size_t i = 0; i < plains.size(); ++i) EXPECT_EQ(outs[i], plains[i]);

  // A flipped byte anywhere in the batch surfaces as kCorruption.
  Bytes bad = cts[4];
  bad[bad.size() / 2] ^= 1;
  views[4] = Slice(bad);
  EXPECT_TRUE(
      det.DecryptBatch(views.data(), views.size(), outs.data()).IsCorruption());
  views[4] = Slice(cts[4]);

  // A truncated ciphertext mid-batch: same kCorruption as the serial loop.
  const Bytes shorty(4, 0);
  views[6] = Slice(shorty);
  EXPECT_TRUE(
      det.DecryptBatch(views.data(), views.size(), outs.data()).IsCorruption());
}

TEST(HmacVerifyTest, TruncatedTagVerification) {
  const Bytes key(20, 0x0b);
  const Slice msg("Hi There", 8);
  const auto tag = HmacSha256::Compute(key, msg);
  EXPECT_TRUE(HmacSha256::Verify(key, msg, Slice(tag.data(), 32)));
  EXPECT_TRUE(HmacSha256::Verify(key, msg, Slice(tag.data(), 16)));
  uint8_t bad[16];
  memcpy(bad, tag.data(), 16);
  bad[0] ^= 1;
  EXPECT_FALSE(HmacSha256::Verify(key, msg, Slice(bad, 16)));
  EXPECT_FALSE(HmacSha256::Verify(key, msg, Slice(tag.data(), size_t{0})));
}

TEST(BackendDispatchTest, ScopedOverrideRebindsNewInstances) {
  // Instances bind at SetKey: an override affects ciphers keyed under it,
  // and DET ciphertexts are byte-identical either way.
  DetCipher under_default;
  ASSERT_TRUE(under_default.SetKey(Bytes(32, 0x10)).ok());
  Bytes ct_default = under_default.Encrypt(Slice("same bytes", 10));
  {
    ScopedAesBackendOverride forced(SoftAesBackend());
    Aes aes;
    ASSERT_TRUE(aes.SetKey(Bytes(16, 1)).ok());
    EXPECT_EQ(aes.backend(), SoftAesBackend());
    DetCipher under_soft;
    ASSERT_TRUE(under_soft.SetKey(Bytes(32, 0x10)).ok());
    EXPECT_EQ(under_soft.Encrypt(Slice("same bytes", 10)), ct_default);
  }
  Aes aes_after;
  ASSERT_TRUE(aes_after.SetKey(Bytes(16, 1)).ok());
  EXPECT_EQ(aes_after.backend(), ActiveAesBackend());
}

// Property sweep: DET uniqueness over distinct inputs (no SIV collisions in
// a modest sample).
class DetUniquenessTest : public ::testing::TestWithParam<int> {};

TEST_P(DetUniquenessTest, NoCollisionsAcrossDistinctPlaintexts) {
  DetCipher c;
  ASSERT_TRUE(c.SetKey(Bytes(32, uint8_t(GetParam()))).ok());
  std::set<Bytes> seen;
  for (uint32_t i = 0; i < 2000; ++i) {
    Bytes pt(4);
    pt[0] = i & 0xff;
    pt[1] = (i >> 8) & 0xff;
    pt[2] = uint8_t(GetParam());
    pt[3] = 0;
    EXPECT_TRUE(seen.insert(c.Encrypt(pt)).second);
  }
}

INSTANTIATE_TEST_SUITE_P(Keys, DetUniquenessTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace concealer
