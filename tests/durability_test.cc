// Dynamic-mode durability: the WAL that makes §6 re-encryption survive a
// restart, the checkpoint that truncates it, and the crash-injection sweep
// that proves it — fail or tear the Nth file operation for EVERY N a
// deterministic dynamic run issues, reopen, and require answers
// byte-identical to a run that never crashed. Storage upkeep (compaction)
// and the tenant-registry recovery surface ride the same harness.
//
// Byte-identity is asserted on STATIC verify=true probes: their fetch
// plans, counts and verification outcome are invariant under §6 rewrites
// (a bin keeps its row population; only ciphertexts, placements and key
// versions change). Dynamic-mode results themselves are rng-shaped (the
// random-bin fill contributes to rows_fetched), so after a reopen they are
// asserted to succeed, not to reproduce bytes.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "concealer/data_provider.h"
#include "concealer/dynamic_wal.h"
#include "concealer/epoch_io.h"
#include "concealer/service_provider.h"
#include "concealer/wire.h"
#include "enclave/registry.h"
#include "service/query_service.h"
#include "service/tenant_registry.h"
#include "storage/fault_fs.h"
#include "workload/wifi_generator.h"

namespace concealer {
namespace {

std::string TempDir() {
  char tmpl[] = "/tmp/concealer-durab-test-XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

void RemoveDirRecursive(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
}

ConcealerConfig TestConfig() {
  ConcealerConfig config;
  config.key_buckets = {8};
  config.key_domains = {20};
  config.time_buckets = 24;
  config.num_cell_ids = 40;
  config.epoch_seconds = 86400;
  config.time_quantum = 60;
  config.make_hash_chains = true;
  return config;
}

std::vector<PlainTuple> TestTuples(uint64_t days) {
  WifiConfig wifi;
  wifi.num_access_points = 20;
  wifi.num_devices = 50;
  wifi.start_time = 0;
  wifi.duration_seconds = days * 86400;
  wifi.total_rows = 600 * days;
  wifi.seed = 7;
  return WifiGenerator(wifi).Generate();
}

/// Static verify=true probes over both epochs. Their serialized results are
/// the byte-identity witness: deterministic, and logically invariant under
/// any number of §6 rewrites.
std::vector<Query> ProbeQueries() {
  std::vector<Query> queries;
  for (uint64_t loc : {2, 7, 13}) {
    Query q;
    q.agg = Aggregate::kCount;
    q.key_values = {{loc}};
    q.verify = true;
    q.time_lo = 8 * 3600;
    q.time_hi = 8 * 3600 + 40 * 60;
    queries.push_back(q);
    q.time_lo = 86400 + 3 * 3600;
    q.time_hi = 86400 + 5 * 3600;
    queries.push_back(q);
  }
  Query top;
  top.agg = Aggregate::kTopK;
  top.k = 3;
  top.time_lo = 0;
  top.time_hi = 2 * 86400;
  queries.push_back(top);
  return queries;
}

/// Runs every probe in static mode and serializes the results.
std::vector<Bytes> Probe(ServiceProvider* sp) {
  sp->set_dynamic_mode(false);
  std::vector<Bytes> out;
  for (const Query& q : ProbeQueries()) {
    auto result = sp->Execute(q);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return {};
    out.push_back(SerializeQueryResult(*result));
  }
  return out;
}

/// The deterministic dynamic phase the crash sweep enumerates: three §6
/// queries with a mid-phase checkpoint (so later WAL records replay over
/// already-absorbed metas) and a final MaintainStorage under a 1-byte
/// checkpoint threshold (so the sweep also crashes inside meta rewrite,
/// WAL truncation and segment compaction). Stops at the first error.
Status RunDynamicPhase(ServiceProvider* sp) {
  sp->set_dynamic_mode(true);
  sp->set_compaction_dead_ratio(0.3);
  for (int i = 0; i < 3; ++i) {
    Query q;
    q.agg = Aggregate::kCount;
    q.key_values = {{uint64_t(3 + 5 * i)}};
    q.time_lo = (i % 2) * 86400 + 6 * 3600;
    q.time_hi = (i % 2) * 86400 + 9 * 3600;
    auto result = sp->Execute(q);
    if (!result.ok()) return result.status();
    if (i == 1) {
      Status st = sp->CheckpointDynamicState();
      if (!st.ok()) return st;
    }
  }
  sp->set_wal_checkpoint_bytes(1);
  return sp->MaintainStorage();
}

StorageOptions MmapOptions(const std::string& dir) {
  StorageOptions options;
  options.engine = StorageOptions::Engine::kMmap;
  options.dir = dir;
  return options;
}

// --- WAL unit level --------------------------------------------------------

TEST(DurabilityWalTest, WalRecordRoundTrip) {
  WalRecord record;
  record.epoch_id = 42;
  record.bin_index = 7;
  record.new_version = 3;
  record.reenc_counter_after = 19;
  record.rewrites.push_back(
      {1234, Row{{Bytes{1, 2, 3}, Bytes{4}, Bytes(16, 0xaa)}}});
  record.rewrites.push_back({99, Row{{Bytes(32, 0x5c)}}});
  record.enc_tag_update = Bytes(48, 0x11);

  const Bytes blob = SerializeWalRecord(record);
  auto back = DeserializeWalRecord(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->epoch_id, 42u);
  EXPECT_EQ(back->bin_index, 7u);
  EXPECT_EQ(back->new_version, 3u);
  EXPECT_EQ(back->reenc_counter_after, 19u);
  ASSERT_EQ(back->rewrites.size(), 2u);
  EXPECT_EQ(back->rewrites[0].first, 1234u);
  EXPECT_EQ(back->rewrites[0].second.columns, record.rewrites[0].second.columns);
  EXPECT_EQ(SerializeWalRecord(*back), blob);

  // Truncations anywhere must fail cleanly, never crash.
  for (size_t cut = 0; cut < blob.size(); cut += 3) {
    Bytes shorter(blob.begin(), blob.begin() + cut);
    EXPECT_FALSE(DeserializeWalRecord(shorter).ok()) << cut;
  }
  // Trailing junk is rejected (strict framing).
  Bytes longer = blob;
  longer.push_back(0x42);
  EXPECT_FALSE(DeserializeWalRecord(longer).ok());
}

TEST(DurabilityWalTest, TagUpdateRoundTrip) {
  TagUpdate update;
  ChainTags tags;
  tags.el.fill(0x01);
  tags.eo.fill(0x02);
  tags.er.fill(0x03);
  update.set[5] = tags;
  tags.el.fill(0x04);
  update.set[17] = tags;
  update.erased = {9, 30};

  const Bytes blob = SerializeTagUpdate(update);
  auto back = DeserializeTagUpdate(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->set.size(), 2u);
  EXPECT_EQ(back->set.at(5).el, update.set.at(5).el);
  EXPECT_EQ(back->set.at(17).el, update.set.at(17).el);
  EXPECT_EQ(back->set.at(17).er, update.set.at(17).er);
  EXPECT_EQ(back->erased, update.erased);
  EXPECT_EQ(SerializeTagUpdate(*back), blob);  // Byte-exact round trip.

  Bytes shorter(blob.begin(), blob.end() - 1);
  EXPECT_FALSE(DeserializeTagUpdate(shorter).ok());
}

TEST(DurabilityWalTest, WalAppendReplayReset) {
  const std::string dir = TempDir();
  const std::string path = dir + "/dynamic.wal";
  auto wal = DynamicWal::Open(path);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();

  const Bytes body_a(40, 0xa1);
  const Bytes body_b(7, 0xb2);
  ASSERT_TRUE((*wal)->Append(body_a).ok());
  ASSERT_TRUE((*wal)->Append(body_b).ok());
  EXPECT_GT((*wal)->SizeBytes(), 0u);

  auto bodies = (*wal)->ReadAll();
  ASSERT_TRUE(bodies.ok()) << bodies.status().ToString();
  ASSERT_EQ(bodies->size(), 2u);
  EXPECT_EQ((*bodies)[0], body_a);
  EXPECT_EQ((*bodies)[1], body_b);

  // A mid-append crash leaves a torn final frame: write half of a valid
  // frame straight into the file. Replay must surface the whole records
  // and truncate the tear away.
  Bytes torn;
  AppendFramedRecord(&torn, Bytes(64, 0xcc));
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(torn.data(), 1, torn.size() / 2, f), torn.size() / 2);
  std::fclose(f);

  auto reopened = DynamicWal::Open(path);
  ASSERT_TRUE(reopened.ok());
  auto replay = (*reopened)->ReadAll();
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_EQ(replay->size(), 2u);
  EXPECT_EQ((*replay)[0], body_a);
  // The tear was truncated: appending keeps the log parseable.
  ASSERT_TRUE((*reopened)->Append(body_b).ok());
  auto again = (*reopened)->ReadAll();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->size(), 3u);

  // In-place corruption (not a tear signature) fails CLOSED.
  {
    auto raw = ReadFileBytes(path);
    ASSERT_TRUE(raw.ok());
    Bytes bad = *raw;
    bad[bad.size() / 2] ^= 0x01;
    ASSERT_TRUE(WriteFileBytes(path, bad).ok());
    auto corrupt = DynamicWal::Open(path);
    ASSERT_TRUE(corrupt.ok());
    auto st = (*corrupt)->ReadAll().status();
    EXPECT_TRUE(st.IsCorruption()) << st.ToString();
    ASSERT_TRUE(WriteFileBytes(path, *raw).ok());  // Restore.
  }

  ASSERT_TRUE((*reopened)->Reset().ok());
  EXPECT_EQ((*reopened)->SizeBytes(), 0u);
  auto empty = (*reopened)->ReadAll();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  RemoveDirRecursive(dir);
}

// --- Provider level --------------------------------------------------------

TEST(DurabilityTest, DynamicStateSurvivesRestart) {
  const std::string dir = TempDir();
  const ConcealerConfig config = TestConfig();
  DataProvider dp(config, Bytes(32, 0x61));
  auto epochs = dp.EncryptAll(TestTuples(2));
  ASSERT_TRUE(epochs.ok());
  ASSERT_EQ(epochs->size(), 2u);

  // In-memory reference that never restarts (and never rewrites): static
  // probe answers are invariant under §6, so all three worlds must agree.
  ServiceProvider memory_sp(config, dp.shared_secret(), StorageOptions{});
  for (const auto& e : *epochs) ASSERT_TRUE(memory_sp.IngestEpoch(e).ok());
  const std::vector<Bytes> want = Probe(&memory_sp);
  ASSERT_FALSE(want.empty());

  const StorageOptions options = MmapOptions(dir);
  std::map<uint64_t, uint64_t> want_counters;
  std::map<uint64_t, std::map<uint32_t, uint64_t>> want_versions;
  {
    auto sp = ServiceProvider::Open(config, dp.shared_secret(), options);
    ASSERT_TRUE(sp.ok()) << sp.status().ToString();
    for (const auto& e : *epochs) ASSERT_TRUE((*sp)->IngestEpoch(e).ok());
    EXPECT_EQ((*sp)->wal_size_bytes(), 0u);

    (*sp)->set_dynamic_mode(true);
    for (int i = 0; i < 4; ++i) {
      Query q;
      q.agg = Aggregate::kCount;
      q.key_values = {{uint64_t(2 + 3 * i)}};
      q.time_lo = (i % 2) * 86400 + 7 * 3600;
      q.time_hi = (i % 2) * 86400 + 10 * 3600;
      auto result = (*sp)->Execute(q);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
    }
    EXPECT_GT((*sp)->wal_size_bytes(), 0u);  // Every rewrite was logged.
    EXPECT_EQ(Probe(sp->get()), want);       // §6 left static answers alone.

    for (uint64_t eid : {0, 1}) {
      auto state = (*sp)->epoch_state(eid);
      ASSERT_TRUE(state.ok());
      want_counters[eid] = (*state)->reenc_counter();
      want_versions[eid] = (*state)->bin_key_versions();
    }
    ASSERT_GT(want_counters[0] + want_counters[1], 0u);
  }  // No checkpoint: restart leans entirely on WAL replay.

  for (int life = 0; life < 2; ++life) {
    auto sp = ServiceProvider::Open(config, dp.shared_secret(), options);
    ASSERT_TRUE(sp.ok()) << "life " << life << ": " << sp.status().ToString();
    for (uint64_t eid : {0, 1}) {
      auto state = (*sp)->epoch_state(eid);
      ASSERT_TRUE(state.ok());
      EXPECT_EQ((*state)->reenc_counter(), want_counters[eid])
          << "life " << life << " epoch " << eid;
      EXPECT_EQ((*state)->bin_key_versions(), want_versions[eid])
          << "life " << life << " epoch " << eid;
    }
    EXPECT_EQ(Probe(sp->get()), want) << "life " << life;
  }

  // The recovered provider is fully live in dynamic mode too.
  {
    auto sp = ServiceProvider::Open(config, dp.shared_secret(), options);
    ASSERT_TRUE(sp.ok());
    (*sp)->set_dynamic_mode(true);
    Query q;
    q.agg = Aggregate::kCount;
    q.key_values = {{11}};
    q.time_lo = 4 * 3600;
    q.time_hi = 6 * 3600;
    ASSERT_TRUE((*sp)->Execute(q).ok());
    EXPECT_EQ(Probe(sp->get()), want);
  }
  RemoveDirRecursive(dir);
}

TEST(DurabilityTest, CheckpointTruncatesWalAndSurvivesRestart) {
  const std::string dir = TempDir();
  const ConcealerConfig config = TestConfig();
  DataProvider dp(config, Bytes(32, 0x62));
  auto epochs = dp.EncryptAll(TestTuples(2));
  ASSERT_TRUE(epochs.ok());

  ServiceProvider memory_sp(config, dp.shared_secret(), StorageOptions{});
  for (const auto& e : *epochs) ASSERT_TRUE(memory_sp.IngestEpoch(e).ok());
  const std::vector<Bytes> want = Probe(&memory_sp);

  const StorageOptions options = MmapOptions(dir);
  std::map<uint64_t, uint64_t> want_counters;
  {
    auto sp = ServiceProvider::Open(config, dp.shared_secret(), options);
    ASSERT_TRUE(sp.ok());
    for (const auto& e : *epochs) ASSERT_TRUE((*sp)->IngestEpoch(e).ok());
    (*sp)->set_dynamic_mode(true);
    for (int i = 0; i < 3; ++i) {
      Query q;
      q.agg = Aggregate::kCount;
      q.key_values = {{uint64_t(4 * i + 1)}};
      q.time_lo = (i % 2) * 86400 + 11 * 3600;
      q.time_hi = (i % 2) * 86400 + 13 * 3600;
      ASSERT_TRUE((*sp)->Execute(q).ok());
    }
    ASSERT_GT((*sp)->wal_size_bytes(), 0u);
    ASSERT_TRUE((*sp)->CheckpointDynamicState().ok());
    EXPECT_EQ((*sp)->wal_size_bytes(), 0u);  // Checkpoint truncates the log.
    for (uint64_t eid : {0, 1}) {
      auto state = (*sp)->epoch_state(eid);
      ASSERT_TRUE(state.ok());
      want_counters[eid] = (*state)->reenc_counter();
    }
  }
  {
    // Restart now recovers from the meta sidecars alone (empty WAL).
    auto sp = ServiceProvider::Open(config, dp.shared_secret(), options);
    ASSERT_TRUE(sp.ok()) << sp.status().ToString();
    EXPECT_EQ((*sp)->wal_size_bytes(), 0u);
    for (uint64_t eid : {0, 1}) {
      auto state = (*sp)->epoch_state(eid);
      ASSERT_TRUE(state.ok());
      EXPECT_EQ((*state)->reenc_counter(), want_counters[eid]) << eid;
    }
    EXPECT_EQ(Probe(sp->get()), want);
  }
  RemoveDirRecursive(dir);
}

// --- Crash-point sweep -----------------------------------------------------
// Enumerate the dynamic phase's file operations with fault_fs in count
// mode, then re-run it once per operation with that operation failing
// (alternating clean failures and torn writes), reopen, and demand the
// recovered provider answer byte-identically to the never-crashed run.

TEST(DurabilityTest, CrashSweepEveryIoPoint) {
  const ConcealerConfig config = TestConfig();
  DataProvider dp(config, Bytes(32, 0x63));
  auto epochs = dp.EncryptAll(TestTuples(2));
  ASSERT_TRUE(epochs.ok());
  ASSERT_EQ(epochs->size(), 2u);

  ServiceProvider memory_sp(config, dp.shared_secret(), StorageOptions{});
  for (const auto& e : *epochs) ASSERT_TRUE(memory_sp.IngestEpoch(e).ok());
  const std::vector<Bytes> want = Probe(&memory_sp);
  ASSERT_FALSE(want.empty());

  // Reference run: count the crash points, then prove the clean path.
  uint64_t num_ops = 0;
  {
    const std::string dir = TempDir();
    const StorageOptions options = MmapOptions(dir);
    {
      auto sp = ServiceProvider::Open(config, dp.shared_secret(), options);
      ASSERT_TRUE(sp.ok());
      for (const auto& e : *epochs) ASSERT_TRUE((*sp)->IngestEpoch(e).ok());
      fault_fs::Arm(0);  // Count mode: passthrough, ops counted.
      ASSERT_TRUE(RunDynamicPhase(sp->get()).ok());
      num_ops = fault_fs::OpsIssued();
      fault_fs::Disarm();
    }
    auto sp = ServiceProvider::Open(config, dp.shared_secret(), options);
    ASSERT_TRUE(sp.ok()) << sp.status().ToString();
    EXPECT_EQ(Probe(sp->get()), want);
    sp->reset();
    RemoveDirRecursive(dir);
  }
  // The phase must actually exercise the durable paths (WAL appends and
  // fsyncs, checkpoint meta rewrites, WAL truncation, compaction), and the
  // sweep must stay enumerable.
  ASSERT_GE(num_ops, 20u) << "dynamic phase issued too little I/O to sweep";
  ASSERT_LE(num_ops, 400u) << "dynamic phase too large to sweep";

  for (uint64_t k = 1; k <= num_ops; ++k) {
    SCOPED_TRACE("crash at op " + std::to_string(k) + " of " +
                 std::to_string(num_ops));
    const std::string dir = TempDir();
    const StorageOptions options = MmapOptions(dir);
    {
      auto sp = ServiceProvider::Open(config, dp.shared_secret(), options);
      ASSERT_TRUE(sp.ok());
      for (const auto& e : *epochs) ASSERT_TRUE((*sp)->IngestEpoch(e).ok());
      // Fail op k — torn (prefix persisted) on even k, clean on odd — and
      // keep the shim DOWN through the provider's destructor: a crashed
      // process issues no best-effort seals either.
      fault_fs::Arm(k, /*torn=*/(k % 2) == 0);
      const Status st = RunDynamicPhase(sp->get());
      EXPECT_TRUE(fault_fs::Triggered());
      EXPECT_FALSE(st.ok()) << "op " << k << " failure was swallowed";
    }
    fault_fs::Disarm();

    // Reopen: recovery must succeed and restore byte-identical answers.
    auto sp = ServiceProvider::Open(config, dp.shared_secret(), options);
    ASSERT_TRUE(sp.ok()) << sp.status().ToString();
    EXPECT_EQ(Probe(sp->get()), want);
    // And stay fully live: another dynamic query plus upkeep.
    (*sp)->set_dynamic_mode(true);
    Query q;
    q.agg = Aggregate::kCount;
    q.key_values = {{9}};
    q.time_lo = 3 * 3600;
    q.time_hi = 5 * 3600;
    ASSERT_TRUE((*sp)->Execute(q).ok());
    ASSERT_TRUE((*sp)->MaintainStorage().ok());
    sp->reset();
    RemoveDirRecursive(dir);
  }
}

// --- Registry level --------------------------------------------------------

TEST(DurabilityTest, TenantRegistryRecoversDynamicState) {
  const std::string root = TempDir();
  const ConcealerConfig config = TestConfig();
  DataProvider dp(config, Bytes(32, 0x64));
  const Bytes user_secret(16, 0x7a);
  ASSERT_TRUE(dp.RegisterUser("alice", user_secret, "").ok());
  auto epochs = dp.EncryptAll(TestTuples(2));
  ASSERT_TRUE(epochs.ok());

  TenantRegistryOptions options;
  options.root_dir = root;
  options.storage.engine = StorageOptions::Engine::kMmap;

  std::vector<Bytes> want;
  {
    TenantRegistry registry(options);
    ASSERT_TRUE(
        registry.CreateTenant("acme", config, dp.shared_secret()).ok());
    ASSERT_TRUE(registry.LoadRegistry("acme", dp.EncryptedRegistry()).ok());
    for (const auto& e : *epochs) {
      ASSERT_TRUE(registry.IngestEpoch("acme", e).ok());
    }
    auto token = registry.OpenSession(
        "acme", "alice", Registry::MakeProof(user_secret, "alice"));
    ASSERT_TRUE(token.ok());

    // Dynamic traffic THROUGH the service layer: QueryService runs the
    // storage upkeep (checkpoint + compaction) after each dynamic query.
    auto service = registry.tenant("acme");
    ASSERT_TRUE(service.ok());
    (*service)->set_dynamic_mode(true);
    for (int i = 0; i < 3; ++i) {
      Query q;
      q.agg = Aggregate::kCount;
      q.key_values = {{uint64_t(2 + 4 * i)}};
      q.time_lo = (i % 2) * 86400 + 9 * 3600;
      q.time_hi = (i % 2) * 86400 + 12 * 3600;
      auto result = registry.Query("acme", *token, q);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
    }
    (*service)->set_dynamic_mode(false);
    for (const Query& q : ProbeQueries()) {
      auto result = registry.Query("acme", *token, q);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      want.push_back(SerializeQueryResult(*result));
    }
  }  // Registry destroyed mid-stream: WAL + metas carry the dynamic state.

  TenantRegistry reopened(options);
  const auto resolver = [&](const std::string& id)
      -> StatusOr<TenantRegistry::TenantCredentials> {
    if (id == "acme") {
      return TenantRegistry::TenantCredentials{config, dp.shared_secret()};
    }
    return Status::NotFound("no credentials for tenant: " + id);
  };
  ASSERT_TRUE(reopened.OpenAll(resolver).ok());
  for (const auto& r : reopened.recovery_statuses()) {
    EXPECT_TRUE(r.status.ok()) << r.tenant_id << ": " << r.status.ToString();
  }
  ASSERT_TRUE(reopened.AggregateRecoveryStatus().ok());

  ASSERT_TRUE(reopened.LoadRegistry("acme", dp.EncryptedRegistry()).ok());
  auto token = reopened.OpenSession(
      "acme", "alice", Registry::MakeProof(user_secret, "alice"));
  ASSERT_TRUE(token.ok());
  size_t i = 0;
  for (const Query& q : ProbeQueries()) {
    auto result = reopened.Query("acme", *token, q);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(SerializeQueryResult(*result), want[i]) << "probe " << i;
    ++i;
  }
  // Dynamic mode keeps working after recovery.
  auto service = reopened.tenant("acme");
  ASSERT_TRUE(service.ok());
  (*service)->set_dynamic_mode(true);
  Query q;
  q.agg = Aggregate::kCount;
  q.key_values = {{5}};
  q.time_lo = 2 * 3600;
  q.time_hi = 4 * 3600;
  ASSERT_TRUE(reopened.Query("acme", *token, q).ok());
  RemoveDirRecursive(root);
}

}  // namespace
}  // namespace concealer
