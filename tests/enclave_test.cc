// Tests for the enclave simulation: oblivious primitives (including trace
// data-independence), bitonic sort, registry and authentication.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "crypto/kdf.h"
#include "crypto/rand_cipher.h"
#include "enclave/enclave.h"
#include "enclave/oblivious.h"
#include "enclave/registry.h"

namespace concealer {
namespace {

TEST(ObliviousTest, OGreaterMatchesComparison) {
  Rng rng(1);
  EXPECT_EQ(OGreater(0, 0), 0u);
  EXPECT_EQ(OGreater(1, 0), 1u);
  EXPECT_EQ(OGreater(0, 1), 0u);
  EXPECT_EQ(OGreater(~uint64_t{0}, 0), 1u);
  EXPECT_EQ(OGreater(0, ~uint64_t{0}), 0u);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t x = rng.Next(), y = rng.Next();
    EXPECT_EQ(OGreater(x, y), x > y ? 1u : 0u) << x << " vs " << y;
  }
}

TEST(ObliviousTest, OMoveSelects) {
  EXPECT_EQ(OMove(1, 10, 20), 10u);
  EXPECT_EQ(OMove(0, 10, 20), 20u);
  EXPECT_EQ(OMove(7, 10, 20), 10u);  // Any nonzero cond selects x.
}

TEST(ObliviousTest, OSwapBytes) {
  Bytes a{1, 2, 3}, b{4, 5, 6};
  OSwapBytes(0, a.data(), b.data(), 3);
  EXPECT_EQ(a, (Bytes{1, 2, 3}));
  OSwapBytes(1, a.data(), b.data(), 3);
  EXPECT_EQ(a, (Bytes{4, 5, 6}));
  EXPECT_EQ(b, (Bytes{1, 2, 3}));
}

TEST(ObliviousTest, OSwap64) {
  uint64_t a = 11, b = 22;
  OSwap64(0, &a, &b);
  EXPECT_EQ(a, 11u);
  OSwap64(1, &a, &b);
  EXPECT_EQ(a, 22u);
  EXPECT_EQ(b, 11u);
}

std::vector<SortRecord> MakeRecords(const std::vector<uint64_t>& keys) {
  std::vector<SortRecord> recs;
  for (uint64_t k : keys) {
    SortRecord r;
    r.key = k;
    r.payload.assign(8, uint8_t(k));  // Payload tracks the key.
    recs.push_back(std::move(r));
  }
  return recs;
}

TEST(BitonicSortTest, SortsAscending) {
  auto recs = MakeRecords({5, 3, 8, 1, 9, 2, 7, 0});
  BitonicSort(&recs);
  for (size_t i = 1; i < recs.size(); ++i) {
    EXPECT_LE(recs[i - 1].key, recs[i].key);
  }
  // Payloads moved with their keys.
  for (const auto& r : recs) EXPECT_EQ(r.payload[0], uint8_t(r.key));
}

TEST(BitonicSortTest, NonPowerOfTwoSizes) {
  Rng rng(5);
  for (size_t n : {1u, 2u, 3u, 5u, 7u, 13u, 100u, 255u}) {
    std::vector<uint64_t> keys;
    for (size_t i = 0; i < n; ++i) keys.push_back(rng.Uniform(1000));
    auto recs = MakeRecords(keys);
    BitonicSort(&recs);
    ASSERT_EQ(recs.size(), n);
    std::sort(keys.begin(), keys.end());
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(recs[i].key, keys[i]);
  }
}

TEST(BitonicSortTest, TraceIsDataIndependent) {
  // The defining property of the oblivious path: operation counts depend
  // only on n, never on the values.
  for (size_t n : {8u, 17u, 64u}) {
    Rng rng(7);
    std::vector<uint64_t> counts;
    for (int trial = 0; trial < 4; ++trial) {
      std::vector<uint64_t> keys;
      for (size_t i = 0; i < n; ++i) {
        keys.push_back(trial == 0 ? i : rng.Next());  // Sorted vs random.
      }
      auto recs = MakeRecords(keys);
      OpCounter().Reset();
      BitonicSort(&recs);
      counts.push_back(OpCounter().Total());
    }
    for (size_t i = 1; i < counts.size(); ++i) {
      EXPECT_EQ(counts[0], counts[i]) << "n=" << n;
    }
  }
}

TEST(ObliviousPartitionTest, FlaggedRecordsMoveToFrontStably) {
  std::vector<SortRecord> recs;
  // Flags: 0 1 0 1 1 0; payload identifies original position.
  const std::vector<uint64_t> flags{0, 1, 0, 1, 1, 0};
  for (size_t i = 0; i < flags.size(); ++i) {
    SortRecord r;
    r.key = flags[i];
    r.payload.assign(8, uint8_t(i));
    recs.push_back(std::move(r));
  }
  ObliviousPartitionByFlag(&recs);
  ASSERT_EQ(recs.size(), 6u);
  // First three were flagged (original positions 1, 3, 4, in order).
  EXPECT_EQ(recs[0].payload[0], 1);
  EXPECT_EQ(recs[1].payload[0], 3);
  EXPECT_EQ(recs[2].payload[0], 4);
  // Rest keep relative order (0, 2, 5).
  EXPECT_EQ(recs[3].payload[0], 0);
  EXPECT_EQ(recs[4].payload[0], 2);
  EXPECT_EQ(recs[5].payload[0], 5);
}

TEST(RegistryTest, AddFindSerialize) {
  Registry reg;
  ASSERT_TRUE(reg.AddUser("alice", Slice("alice-secret", 12), "dev-1").ok());
  ASSERT_TRUE(reg.AddUser("bob", Slice("bob-secret", 10), "").ok());
  EXPECT_TRUE(reg.AddUser("alice", Slice("x", 1), "")
                  .IsInvalidArgument());
  EXPECT_TRUE(reg.AddUser("", Slice("x", 1), "").IsInvalidArgument());

  auto alice = reg.Find("alice");
  ASSERT_TRUE(alice.ok());
  EXPECT_EQ(alice->owned_observation, "dev-1");
  EXPECT_TRUE(reg.Find("carol").status().IsNotFound());

  auto round = Registry::Deserialize(reg.Serialize());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->size(), 2u);
  auto bob = round->Find("bob");
  ASSERT_TRUE(bob.ok());
  EXPECT_EQ(bob->credential, Registry::MakeProof(Slice("bob-secret", 10),
                                                 "bob"));
}

TEST(RegistryTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Registry::Deserialize(Bytes{1, 2}).ok());
  Bytes bad{9, 0, 0, 0};  // Claims 9 users, no payload.
  EXPECT_FALSE(Registry::Deserialize(bad).ok());
}

class EnclaveTest : public ::testing::Test {
 protected:
  EnclaveTest() : sk_(32, 0x11), enclave_(sk_) {}

  Bytes EncryptedRegistry(const Registry& reg) {
    RandCipher cipher;
    EXPECT_TRUE(cipher.SetKey(DeriveKey(sk_, "registry", Slice())).ok());
    return cipher.Encrypt(reg.Serialize());
  }

  Bytes sk_;
  Enclave enclave_;
};

TEST_F(EnclaveTest, AuthenticateRequiresRegistry) {
  EXPECT_TRUE(enclave_
                  .Authenticate("alice",
                                Registry::MakeProof(Slice("s", 1), "alice"))
                  .status()
                  .IsFailedPrecondition());
}

TEST_F(EnclaveTest, AuthenticateAcceptsValidProof) {
  Registry reg;
  ASSERT_TRUE(reg.AddUser("alice", Slice("alice-secret", 12), "dev-1").ok());
  ASSERT_TRUE(enclave_.LoadRegistry(EncryptedRegistry(reg)).ok());

  auto session = enclave_.Authenticate(
      "alice", Registry::MakeProof(Slice("alice-secret", 12), "alice"));
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->user_id, "alice");
  EXPECT_EQ(session->owned_observation, "dev-1");
}

TEST_F(EnclaveTest, AuthenticateRejectsBadProofAndUnknownUser) {
  Registry reg;
  ASSERT_TRUE(reg.AddUser("alice", Slice("alice-secret", 12), "").ok());
  ASSERT_TRUE(enclave_.LoadRegistry(EncryptedRegistry(reg)).ok());

  EXPECT_TRUE(enclave_
                  .Authenticate("alice",
                                Registry::MakeProof(Slice("wrong", 5),
                                                    "alice"))
                  .status()
                  .IsPermissionDenied());
  EXPECT_TRUE(enclave_
                  .Authenticate("mallory",
                                Registry::MakeProof(Slice("x", 1), "mallory"))
                  .status()
                  .IsPermissionDenied());
}

TEST_F(EnclaveTest, LoadRegistryRejectsTamperedBlob) {
  Registry reg;
  ASSERT_TRUE(reg.AddUser("alice", Slice("s", 1), "").ok());
  Bytes blob = EncryptedRegistry(reg);
  blob[blob.size() / 2] ^= 1;
  EXPECT_FALSE(enclave_.LoadRegistry(blob).ok());
}

TEST_F(EnclaveTest, EpochCiphersDifferAcrossEpochs) {
  auto c1 = enclave_.EpochDetCipher(1);
  auto c2 = enclave_.EpochDetCipher(2);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  // Same value encrypted in different epochs yields different ciphertext
  // (forward privacy, paper §7).
  EXPECT_NE(c1->Encrypt(Slice("v", 1)), c2->Encrypt(Slice("v", 1)));
  // Same epoch: identical (trapdoors match data).
  auto c1b = enclave_.EpochDetCipher(1);
  ASSERT_TRUE(c1b.ok());
  EXPECT_EQ(c1->Encrypt(Slice("v", 1)), c1b->Encrypt(Slice("v", 1)));
}

TEST_F(EnclaveTest, ReencryptionCounterChangesKeys) {
  auto c0 = enclave_.EpochDetCipher(1, 0);
  auto c1 = enclave_.EpochDetCipher(1, 1);
  ASSERT_TRUE(c0.ok());
  ASSERT_TRUE(c1.ok());
  EXPECT_NE(c0->Encrypt(Slice("v", 1)), c1->Encrypt(Slice("v", 1)));
}

TEST_F(EnclaveTest, EcallsAreCounted) {
  const uint64_t before = enclave_.ecalls();
  (void)enclave_.EpochDetCipher(1);
  (void)enclave_.EpochRandCipher(1);
  EXPECT_EQ(enclave_.ecalls(), before + 2);
}

}  // namespace
}  // namespace concealer
