// Differential fuzzing: random grid configurations, random skewed datasets
// and random queries, executed through the full encrypted pipeline and
// compared against the cleartext oracle. Each seed exercises a different
// (grid shape, cell-id count, workload skew, query mix) point; any
// divergence — count, grouped results, or volume-hiding violation — fails.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <memory>
#include <set>

#include "baseline/cleartext_db.h"
#include "common/random.h"
#include "concealer/data_provider.h"
#include "concealer/dynamic_wal.h"
#include "concealer/epoch_io.h"
#include "concealer/service_provider.h"
#include "enclave/registry.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire_format.h"
#include "service/tenant_registry.h"
#include "workload/wifi_generator.h"

namespace concealer {
namespace {

class PipelineFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineFuzz, RandomConfigAndQueriesMatchOracle) {
  Rng rng(GetParam());

  // Random but valid configuration.
  ConcealerConfig config;
  config.key_buckets = {static_cast<uint32_t>(2 + rng.Uniform(15))};
  const uint64_t domain = config.key_buckets[0] + rng.Uniform(30);
  config.key_domains = {domain};
  config.time_buckets = static_cast<uint32_t>(6 + rng.Uniform(30));
  config.epoch_seconds = 86400 - (86400 % config.time_buckets);
  const uint32_t cells = config.key_buckets[0] * config.time_buckets;
  config.num_cell_ids =
      static_cast<uint32_t>(1 + rng.Uniform(std::max(2u, cells / 2)));
  config.time_quantum = rng.Uniform(2) == 0 ? 60 : 300;
  config.equal_fake_tuples = rng.Uniform(2) == 0;
  config.use_bfd = rng.Uniform(2) == 0;
  config.winsec_lambda_buckets =
      static_cast<uint32_t>(1 + rng.Uniform(config.time_buckets));

  // Random workload.
  WifiConfig wifi;
  wifi.num_access_points = static_cast<uint32_t>(domain);
  wifi.num_devices = 20 + rng.Uniform(60);
  wifi.start_time = 0;
  wifi.duration_seconds = config.epoch_seconds * (1 + rng.Uniform(2));
  wifi.total_rows = 300 + rng.Uniform(1500);
  wifi.time_quantum = config.time_quantum;
  wifi.location_skew = 0.3 + rng.NextDouble() * 0.8;
  wifi.seed = GetParam() * 31 + 1;
  const auto tuples = WifiGenerator(wifi).Generate();

  DataProvider dp(config, Bytes(32, uint8_t(GetParam())));
  ServiceProvider sp(config, dp.shared_secret());
  auto epochs = dp.EncryptAll(tuples);
  ASSERT_TRUE(epochs.ok()) << epochs.status().ToString();
  for (const auto& e : *epochs) {
    ASSERT_TRUE(sp.IngestEpoch(e).ok());
  }
  CleartextDb oracle(config.time_quantum);
  oracle.Insert(tuples);

  // Random queries over random methods/modes.
  std::set<uint64_t> point_volumes;
  for (int i = 0; i < 10; ++i) {
    Query q;
    const int kind = static_cast<int>(rng.Uniform(5));
    q.agg = kind == 0   ? Aggregate::kCount
            : kind == 1 ? Aggregate::kTopK
            : kind == 2 ? Aggregate::kThresholdKeys
            : kind == 3 ? Aggregate::kKeysWithObservation
                        : Aggregate::kCount;
    if (q.agg == Aggregate::kCount) {
      q.key_values = {{rng.Uniform(domain)}};
    }
    if (kind == 4) {  // Q5-style: count of one device at one location.
      const PlainTuple& probe = tuples[rng.Uniform(tuples.size())];
      q.key_values = {probe.keys};
      q.observation = probe.observation;
    }
    if (q.agg == Aggregate::kKeysWithObservation) {
      q.observation = tuples[rng.Uniform(tuples.size())].observation;
    }
    const uint64_t t0 = rng.Uniform(wifi.duration_seconds);
    const bool is_point = rng.Uniform(3) == 0;
    q.time_lo = t0;
    q.time_hi = is_point ? t0 : t0 + rng.Uniform(6 * 3600);
    q.method = static_cast<RangeMethod>(rng.Uniform(3));
    q.oblivious = rng.Uniform(4) == 0;  // Oblivious mode is slow; sample it.
    q.verify = rng.Uniform(3) == 0;
    q.k = 1 + static_cast<uint32_t>(rng.Uniform(5));
    q.threshold = 1 + static_cast<uint32_t>(rng.Uniform(10));

    auto got = sp.Execute(q);
    ASSERT_TRUE(got.ok()) << "seed " << GetParam() << " query " << i << ": "
                          << got.status().ToString();
    auto want = oracle.Execute(q);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(got->count, want->count)
        << "seed " << GetParam() << " query " << i;
    EXPECT_EQ(got->keyed_counts, want->keyed_counts)
        << "seed " << GetParam() << " query " << i;

    // Volume hiding: single-key point BPB queries within one epoch must
    // always fetch the same number of rows (one bin). Whole-domain queries
    // are a different query shape (they fetch one bin per covered column),
    // and multi-epoch plans have per-epoch bin sizes — both excluded.
    if (is_point && q.method == RangeMethod::kBPB &&
        q.key_values.size() == 1 &&
        wifi.duration_seconds == config.epoch_seconds) {
      point_volumes.insert(got->rows_fetched);
    }
  }
  EXPECT_LE(point_volumes.size(), 1u) << "volume hiding violated";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Range<uint64_t>(1, 13));

// Transport-frame fuzzing: random mutations (bit flips, truncations,
// extensions) of a serialized epoch must always come back as a clean error
// or an untouched round-trip — never a crash or a silently different
// epoch. The same frame guards segment records, epoch metas and the index
// sidecar, so this corpus covers the persistent engine's on-disk parsing
// too.
class EpochBlobFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EpochBlobFuzz, MutatedBlobsNeverCrash) {
  Rng rng(GetParam() * 7919 + 13);

  ConcealerConfig config;
  config.key_buckets = {4};
  config.key_domains = {8};
  config.time_buckets = 6;
  config.epoch_seconds = 8640;
  config.num_cell_ids = 8;
  config.time_quantum = 60;

  WifiConfig wifi;
  wifi.num_access_points = 8;
  wifi.num_devices = 10;
  wifi.start_time = 0;
  wifi.duration_seconds = config.epoch_seconds;
  wifi.total_rows = 120;
  wifi.seed = GetParam();
  const auto tuples = WifiGenerator(wifi).Generate();

  DataProvider dp(config, Bytes(32, uint8_t(GetParam())));
  auto epoch = dp.EncryptEpoch(0, 0, tuples);
  ASSERT_TRUE(epoch.ok());
  const Bytes blob = SerializeEpoch(*epoch);

  for (int trial = 0; trial < 200; ++trial) {
    Bytes mutated = blob;
    const int kind = static_cast<int>(rng.Uniform(4));
    if (kind == 0) {  // Bit flips.
      const int flips = 1 + static_cast<int>(rng.Uniform(8));
      for (int f = 0; f < flips; ++f) {
        mutated[rng.Uniform(mutated.size())] ^=
            uint8_t(1u << rng.Uniform(8));
      }
    } else if (kind == 1) {  // Truncation.
      mutated.resize(rng.Uniform(mutated.size()));
    } else if (kind == 2) {  // Extension with junk.
      const int extra = 1 + static_cast<int>(rng.Uniform(64));
      for (int e = 0; e < extra; ++e) {
        mutated.push_back(uint8_t(rng.Next()));
      }
    } else {  // Zero a window (mimics an unwritten mmap tail).
      const size_t start = rng.Uniform(mutated.size());
      const size_t len =
          std::min<size_t>(mutated.size() - start, 1 + rng.Uniform(256));
      std::fill(mutated.begin() + start, mutated.begin() + start + len, 0);
    }
    auto result = DeserializeEpoch(mutated);
    if (result.ok()) {
      // The FNV checksum spared it only if the mutation was a no-op (or
      // collided on identical bytes): the round trip must be exact.
      EXPECT_EQ(SerializeEpoch(*result), blob) << "trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EpochBlobFuzz,
                         ::testing::Range<uint64_t>(1, 5));

// Dynamic-WAL record fuzzing: the log drives ServiceProvider::Open's
// replay, so a mangled record must always fail closed (no partial
// key-version application) — the only tolerated damage is the tear a
// mid-append crash leaves at the END of the file, which DynamicWal
// truncates away. Mirrors the epoch-blob corpus above.
class WalRecordFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WalRecordFuzz, MutatedRecordsFailClosedOrRoundTrip) {
  Rng rng(GetParam() * 6311 + 29);

  // A representative record: several rewrites with multi-column rows and
  // an encrypted tag update, framed exactly as DynamicWal stores it.
  WalRecord record;
  record.epoch_id = GetParam();
  record.bin_index = static_cast<uint32_t>(rng.Uniform(64));
  record.new_version = 1 + rng.Uniform(5);
  record.reenc_counter_after = 1 + rng.Uniform(50);
  for (int r = 0; r < 6; ++r) {
    Row row;
    const uint32_t cols = 1 + static_cast<uint32_t>(rng.Uniform(4));
    for (uint32_t c = 0; c < cols; ++c) {
      Bytes col(1 + rng.Uniform(48));
      for (auto& b : col) b = uint8_t(rng.Next());
      row.columns.emplace_back(std::move(col));
    }
    record.rewrites.push_back({rng.Uniform(10000), std::move(row)});
  }
  record.enc_tag_update = Bytes(32 + rng.Uniform(200));
  for (auto& b : record.enc_tag_update) b = uint8_t(rng.Next());

  const Bytes body = SerializeWalRecord(record);
  Bytes framed;
  AppendFramedRecord(&framed, body);

  for (int trial = 0; trial < 200; ++trial) {
    Bytes mutated = framed;
    const int kind = static_cast<int>(rng.Uniform(4));
    if (kind == 0) {  // Bit flips.
      const int flips = 1 + static_cast<int>(rng.Uniform(8));
      for (int f = 0; f < flips; ++f) {
        mutated[rng.Uniform(mutated.size())] ^= uint8_t(1u << rng.Uniform(8));
      }
    } else if (kind == 1) {  // Truncation (a torn append).
      mutated.resize(rng.Uniform(mutated.size()));
    } else if (kind == 2) {  // Extension with junk.
      const int extra = 1 + static_cast<int>(rng.Uniform(64));
      for (int e = 0; e < extra; ++e) mutated.push_back(uint8_t(rng.Next()));
    } else {  // Zero a window (an unwritten page-cache tail).
      const size_t start = rng.Uniform(mutated.size());
      const size_t len =
          std::min<size_t>(mutated.size() - start, 1 + rng.Uniform(256));
      std::fill(mutated.begin() + start, mutated.begin() + start + len, 0);
    }

    // Parse as replay does: frame first, then the record body.
    size_t off = 0;
    auto parsed = ReadFramedRecord(mutated, &off);
    if (!parsed.ok()) continue;  // Clean rejection at the frame layer.
    auto back = DeserializeWalRecord(*parsed);
    if (!back.ok()) continue;  // Clean rejection at the record layer.
    // Both layers passed: the mutation must have been byte-neutral.
    EXPECT_EQ(SerializeWalRecord(*back), body) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalRecordFuzz,
                         ::testing::Range<uint64_t>(1, 5));

// Wire-frame fuzzing against a LIVE server (net/server.h): mutated frames
// — bad magic, bad version, hostile declared lengths, truncations, bit
// flips, raw garbage — may cost at most the connection that sent them.
// The server must never crash, never tear down another tenant's
// connection, and keep serving a well-behaved client throughout. (ASan CI
// runs this suite; the suite name intentionally does NOT match the Net*
// TSan filter — the single-connection victims here add nothing to the
// interleaving coverage net_test.cc already provides.)
class WireFrameFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WireFrameFuzz, MutatedFramesOnlyCostTheOffendingConnection) {
  Rng rng(GetParam() * 104729 + 7);

  ConcealerConfig config;
  config.key_buckets = {4};
  config.key_domains = {8};
  config.time_buckets = 6;
  config.epoch_seconds = 8640;
  config.num_cell_ids = 8;
  config.time_quantum = 60;

  DataProvider dp(config, Bytes(32, uint8_t(GetParam())));
  const Bytes user_secret{'p', 'w'};
  ASSERT_TRUE(dp.RegisterUser("alice", Slice(user_secret), "").ok());
  std::vector<PlainTuple> readings(120);
  for (size_t i = 0; i < readings.size(); ++i) {
    readings[i].keys = {i % 8};
    readings[i].time = (i * 60) % config.epoch_seconds;
  }
  auto epochs = dp.EncryptAll(readings);
  ASSERT_TRUE(epochs.ok());

  TenantRegistryOptions registry_options;
  registry_options.pool_threads = 2;
  // Frame parsing never reaches storage; pin the in-memory engine so the
  // fuzz runs identically under the CONCEALER_STORAGE_ENGINE=mmap sweep
  // (which would otherwise demand a root_dir).
  registry_options.storage.engine = StorageOptions::Engine::kMemory;
  TenantRegistry registry(registry_options);
  ASSERT_TRUE(registry.CreateTenant("acme", config, dp.shared_secret()).ok());
  ASSERT_TRUE(registry.LoadRegistry("acme", Slice(dp.EncryptedRegistry())).ok());
  for (const auto& e : *epochs) {
    ASSERT_TRUE(registry.IngestEpoch("acme", e).ok());
  }
  net::ServerOptions server_options;
  server_options.max_frame_bytes = 1 << 20;
  net::ConcealerServer server(&registry, server_options);
  ASSERT_TRUE(server.Start().ok());

  net::ConcealerClient good;
  ASSERT_TRUE(good.Connect("127.0.0.1", server.port()).ok());
  const Bytes proof = Registry::MakeProof(Slice(user_secret), "alice");
  auto token = good.OpenSession("acme", "alice", Slice(proof));
  ASSERT_TRUE(token.ok()) << token.status().ToString();
  Query probe;
  probe.agg = Aggregate::kCount;
  probe.key_values = {{1}};
  probe.time_lo = 0;
  probe.time_hi = 4000;

  // The corpus seed: one well-formed query request frame.
  net::NetHeader header;
  header.type = net::MsgType::kQuery;
  header.request_id = 1;
  header.tenant_id = "acme";
  net::QueryReq req;
  req.token = *token;
  req.query = probe;
  const Bytes valid = net::EncodeRequest(header, Slice(net::EncodeQueryReq(req)));

  auto raw_dial = [&]() -> int {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    struct sockaddr_in addr;
    ::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    return fd;
  };
  // Drains whatever the server does with the mutation. `must_close` kinds
  // (structurally hostile headers) REQUIRE a hang-up; for the rest a
  // clean error response, a hang-up, or silence (incomplete frame) are
  // all acceptable — a crash or a cross-connection casualty is not.
  auto run_trial = [&](const Bytes& bytes, bool must_close) {
    int fd = raw_dial();
    if (!bytes.empty()) {
      (void)!::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int timeout_ms = must_close ? 5'000 : 50;
    bool eof = false;
    if (::poll(&pfd, 1, timeout_ms) > 0) {
      char buf[4096];
      eof = ::recv(fd, buf, sizeof(buf), 0) == 0;
    }
    if (must_close) {
      EXPECT_TRUE(eof);
    }
    ::close(fd);
  };

  for (int trial = 0; trial < 25; ++trial) {
    Bytes mutated = valid;
    const int kind = static_cast<int>(rng.Uniform(7));
    bool must_close = false;
    if (kind == 0) {  // Bad magic.
      mutated[rng.Uniform(4)] ^= uint8_t(1u << rng.Uniform(8));
      must_close = true;
    } else if (kind == 1) {  // Bad frame version (bytes 4..7).
      mutated[4 + rng.Uniform(4)] ^= uint8_t(1u << rng.Uniform(8));
      must_close = true;
    } else if (kind == 2) {  // Hostile declared length (bytes 16..23).
      const uint64_t hostile =
          server_options.max_frame_bytes + 1 + rng.Uniform(1u << 20);
      for (int i = 0; i < 8; ++i) {
        mutated[16 + i] = uint8_t((hostile >> (8 * i)) & 0xff);
      }
      mutated.resize(24);  // Header alone must be enough to reject.
      must_close = true;
    } else if (kind == 3) {  // Truncation (mid-header or mid-body).
      mutated.resize(rng.Uniform(mutated.size()));
    } else if (kind == 4) {  // Body bit flips (checksum must catch).
      const int flips = 1 + static_cast<int>(rng.Uniform(8));
      for (int f = 0; f < flips; ++f) {
        mutated[24 + rng.Uniform(mutated.size() - 24)] ^=
            uint8_t(1u << rng.Uniform(8));
      }
      must_close = true;
    } else if (kind == 5) {  // Pure garbage.
      mutated.resize(8 + rng.Uniform(128));
      for (auto& b : mutated) b = uint8_t(rng.Next());
      // Random first 4 bytes are almost never "CONC", but when they are,
      // the version/length checks still apply — don't assert close.
    } else {  // Valid frame followed by garbage: first parses, tail kills.
      const int extra = 9 + static_cast<int>(rng.Uniform(64));
      for (int e = 0; e < extra; ++e) mutated.push_back(uint8_t(rng.Next()));
    }
    run_trial(mutated, must_close);
  }

  // The well-behaved connection lived through all of it.
  auto result = good.Query("acme", *token, probe);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(server.stats().malformed_closed, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFrameFuzz,
                         ::testing::Range<uint64_t>(1, 5));

}  // namespace
}  // namespace concealer
