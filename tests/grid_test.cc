// Tests for the grid (Algorithm 1 Stage 1) and the wire encodings.

#include <gtest/gtest.h>

#include <set>

#include "concealer/grid.h"
#include "concealer/types.h"
#include "concealer/wire.h"
#include "crypto/grid_hash.h"

namespace concealer {
namespace {

ConcealerConfig SmallConfig() {
  ConcealerConfig config;
  config.key_buckets = {8};
  config.key_domains = {20};
  config.time_buckets = 24;
  config.num_cell_ids = 50;
  config.epoch_seconds = 86400;
  config.time_quantum = 60;
  return config;
}

class GridTest : public ::testing::Test {
 protected:
  GridTest() {
    EXPECT_TRUE(hash_.SetKey(Bytes(32, 0x21)).ok());
  }
  GridHash hash_;
};

TEST_F(GridTest, CreateValidatesConfig) {
  ConcealerConfig config = SmallConfig();
  EXPECT_TRUE(Grid::Create(config, &hash_, 1, 0).ok());

  config.num_cell_ids = 0;
  EXPECT_FALSE(Grid::Create(config, &hash_, 1, 0).ok());
  config.num_cell_ids = 8 * 24 + 1;  // More cell-ids than cells.
  EXPECT_FALSE(Grid::Create(config, &hash_, 1, 0).ok());

  config = SmallConfig();
  config.key_buckets = {};
  EXPECT_FALSE(Grid::Create(config, &hash_, 1, 0).ok());

  config = SmallConfig();
  config.epoch_seconds = 100;  // Not divisible by 24 buckets.
  EXPECT_FALSE(Grid::Create(config, &hash_, 1, 0).ok());

  EXPECT_FALSE(Grid::Create(SmallConfig(), nullptr, 1, 0).ok());
}

TEST_F(GridTest, CellAssignmentsDeterministicAcrossInstances) {
  // DP and the enclave independently construct the grid; all mappings must
  // agree.
  auto g1 = Grid::Create(SmallConfig(), &hash_, 7, 7 * 86400);
  auto g2 = Grid::Create(SmallConfig(), &hash_, 7, 7 * 86400);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  for (uint32_t c = 0; c < g1->num_cells(); ++c) {
    EXPECT_EQ(g1->CellIdOf(c), g2->CellIdOf(c));
  }
  for (uint64_t loc = 0; loc < 20; ++loc) {
    auto c1 = g1->CellIndexOf({loc}, 7 * 86400 + 3600 * loc);
    auto c2 = g2->CellIndexOf({loc}, 7 * 86400 + 3600 * loc);
    ASSERT_TRUE(c1.ok());
    ASSERT_TRUE(c2.ok());
    EXPECT_EQ(*c1, *c2);
  }
}

TEST_F(GridTest, CellIdAllocationChangesAcrossEpochs) {
  auto g1 = Grid::Create(SmallConfig(), &hash_, 1, 0);
  auto g2 = Grid::Create(SmallConfig(), &hash_, 2, 86400);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  int same = 0;
  for (uint32_t c = 0; c < g1->num_cells(); ++c) {
    same += (g1->CellIdOf(c) == g2->CellIdOf(c));
  }
  EXPECT_LT(same, static_cast<int>(g1->num_cells()) / 2);
}

TEST_F(GridTest, AllCellIdsWithinRange) {
  auto grid = Grid::Create(SmallConfig(), &hash_, 3, 0);
  ASSERT_TRUE(grid.ok());
  for (uint32_t c = 0; c < grid->num_cells(); ++c) {
    EXPECT_LT(grid->CellIdOf(c), SmallConfig().num_cell_ids);
  }
}

TEST_F(GridTest, TimeBucketsPartitionTheEpoch) {
  auto grid = Grid::Create(SmallConfig(), &hash_, 1, 86400);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->TimeBucketOf(86400), 0u);
  EXPECT_EQ(grid->TimeBucketOf(86400 + 3599), 0u);
  EXPECT_EQ(grid->TimeBucketOf(86400 + 3600), 1u);
  EXPECT_EQ(grid->TimeBucketOf(86400 + 86399), 23u);
  // Out-of-epoch timestamps clamp.
  EXPECT_EQ(grid->TimeBucketOf(0), 0u);
  EXPECT_EQ(grid->TimeBucketOf(86400 * 5), 23u);
}

TEST_F(GridTest, CellIndexUsesKeyHashAndTimeBucket) {
  auto grid = Grid::Create(SmallConfig(), &hash_, 1, 0);
  ASSERT_TRUE(grid.ok());
  // Same key, same bucket -> same cell; different bucket -> different cell.
  auto a = grid->CellIndexOf({5}, 100);
  auto b = grid->CellIndexOf({5}, 3599);
  auto c = grid->CellIndexOf({5}, 3600);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_NE(*a, *c);
  // Arity mismatch rejected.
  EXPECT_FALSE(grid->CellIndexOf({1, 2}, 0).ok());
}

TEST_F(GridTest, CoverCellsSingleKeyRange) {
  auto grid = Grid::Create(SmallConfig(), &hash_, 1, 0);
  ASSERT_TRUE(grid.ok());
  auto cover = grid->CoverCells({{5}}, 2, 4);
  ASSERT_TRUE(cover.ok());
  EXPECT_EQ(cover->size(), 3u);  // One key column x three buckets.
  // Each covered cell must map back to key 5's column.
  auto cell_b2 = grid->CellIndexOf({5}, 2 * 3600);
  ASSERT_TRUE(cell_b2.ok());
  EXPECT_NE(std::find(cover->begin(), cover->end(), *cell_b2), cover->end());
}

TEST_F(GridTest, CoverCellsWholeDomain) {
  auto grid = Grid::Create(SmallConfig(), &hash_, 1, 0);
  ASSERT_TRUE(grid.ok());
  auto cover = grid->CoverCells({}, 0, 0);
  ASSERT_TRUE(cover.ok());
  EXPECT_EQ(cover->size(), 8u);  // All 8 key columns at bucket 0.
  auto all = grid->CoverCells({}, 0, 23);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 8u * 24);
  EXPECT_FALSE(grid->CoverCells({}, 0, 24).ok());  // Bucket out of range.
}

TEST_F(GridTest, CoverCellsDeduplicatesCollidingKeys) {
  auto grid = Grid::Create(SmallConfig(), &hash_, 1, 0);
  ASSERT_TRUE(grid.ok());
  // 20 domain values hash into 8 columns: duplicates collapse.
  std::vector<std::vector<uint64_t>> all_keys;
  for (uint64_t k = 0; k < 20; ++k) all_keys.push_back({k});
  auto cover = grid->CoverCells(all_keys, 0, 0);
  ASSERT_TRUE(cover.ok());
  EXPECT_LE(cover->size(), 8u);
  std::set<uint32_t> dedup(cover->begin(), cover->end());
  EXPECT_EQ(dedup.size(), cover->size());
}

TEST_F(GridTest, MultiAxisGrid) {
  ConcealerConfig config;
  config.key_buckets = {4, 5};
  config.key_domains = {100, 10};
  config.time_buckets = 0;  // Non-time-series (TPC-H style).
  config.num_cell_ids = 10;
  auto grid = Grid::Create(config, &hash_, 0, 0);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->num_cells(), 20u);
  auto cell = grid->CellIndexOf({42, 3}, 0);
  ASSERT_TRUE(cell.ok());
  EXPECT_LT(*cell, 20u);
  auto cover = grid->CoverCells({{42, 3}}, 0, 0);
  ASSERT_TRUE(cover.ok());
  EXPECT_EQ(cover->size(), 1u);
  EXPECT_EQ((*cover)[0], *cell);
}

TEST_F(GridTest, QuantizeTime) {
  auto grid = Grid::Create(SmallConfig(), &hash_, 1, 0);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->QuantizeTime(0), 0u);
  EXPECT_EQ(grid->QuantizeTime(59), 0u);
  EXPECT_EQ(grid->QuantizeTime(60), 60u);
  EXPECT_EQ(grid->QuantizeTime(119), 60u);
}

// --- wire encodings ---

TEST(WireTest, TuplePlainRoundTrip) {
  PlainTuple t;
  t.keys = {7, 42};
  t.time = 123456;
  t.observation = "dev-9";
  t.payload = NumericPayload(55, "|extra");
  auto parsed = ParseTuplePlain(TuplePlain(t));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->keys, t.keys);
  EXPECT_EQ(parsed->time, t.time);
  EXPECT_EQ(parsed->observation, t.observation);
  EXPECT_EQ(parsed->payload, t.payload);
  EXPECT_EQ(PayloadValue(*parsed), 55u);
}

TEST(WireTest, ParseTupleRejectsGarbage) {
  EXPECT_FALSE(ParseTuplePlain(Bytes{}).ok());
  EXPECT_FALSE(ParseTuplePlain(Bytes{'X', 0, 0, 0, 0}).ok());
  Bytes truncated = TuplePlain(PlainTuple{{1}, 5, "o", "p"});
  truncated.resize(truncated.size() - 3);
  EXPECT_FALSE(ParseTuplePlain(truncated).ok());
}

TEST(WireTest, PlaintextEncodingsAreDomainSeparated) {
  // An El plaintext can never equal an Eo/Er/Index plaintext even with
  // contrived values (distinct leading tags).
  const Bytes el = KeyTimePlain({1}, 60);
  const Bytes eo = ObsTimePlain("x", 60);
  const Bytes ix = IndexPlain(1, 60);
  EXPECT_NE(el[0], eo[0]);
  EXPECT_NE(el[0], ix[0]);
  EXPECT_NE(eo[0], ix[0]);
}

TEST(WireTest, GridLayoutRoundTrip) {
  GridLayout layout;
  layout.cell_of_cell_index = {1, 0, 2, 1};
  layout.count_per_cell = {4, 0, 1, 2};
  layout.count_per_cell_id = {4, 2, 1};
  auto back = DeserializeGridLayout(SerializeGridLayout(layout));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->cell_of_cell_index, layout.cell_of_cell_index);
  EXPECT_EQ(back->count_per_cell, layout.count_per_cell);
  EXPECT_EQ(back->count_per_cell_id, layout.count_per_cell_id);
  EXPECT_FALSE(DeserializeGridLayout(Bytes{1, 0}).ok());
}

TEST(WireTest, TagsRoundTrip) {
  VerificationTags tags;
  ChainTags t;
  t.el.fill(1);
  t.eo.fill(2);
  t.er.fill(3);
  tags.emplace(7, t);
  t.el.fill(9);
  tags.emplace(1, t);
  auto back = DeserializeTags(SerializeTags(tags));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ(back->at(7).eo[0], 2);
  EXPECT_EQ(back->at(1).el[0], 9);
  EXPECT_FALSE(DeserializeTags(Bytes{5, 0, 0, 0, 1}).ok());
}

TEST(WireTest, QueryResultRoundTrip) {
  QueryResult r;
  r.count = 42;
  r.rows_fetched = 100;
  r.rows_matched = 42;
  r.verified = true;
  r.keyed_counts = {{{1, 2}, 10}, {{3}, 5}};
  auto back = DeserializeQueryResult(SerializeQueryResult(r));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->count, 42u);
  EXPECT_EQ(back->rows_fetched, 100u);
  EXPECT_EQ(back->rows_matched, 42u);
  EXPECT_TRUE(back->verified);
  ASSERT_EQ(back->keyed_counts.size(), 2u);
  EXPECT_EQ(back->keyed_counts[0].first, (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(back->keyed_counts[1].second, 5u);
  EXPECT_FALSE(DeserializeQueryResult(Bytes{1, 2, 3}).ok());
}

TEST(WireTest, ChainStepMatchesManualChain) {
  const Bytes a{1, 2, 3}, b{4, 5};
  const auto h0 = ChainStep(a, nullptr);
  const auto h1 = ChainStep(b, &h0);
  // Manual: SHA256(b || h0).
  Sha256 h;
  h.Update(b);
  h.Update(Slice(h0.data(), h0.size()));
  EXPECT_EQ(h1, h.Finish());
}

}  // namespace
}  // namespace concealer
