// Tests for the paged B+-tree index: node-file round trips, byte-identity
// between paged and resident trees, eviction/reload behavior under a tiny
// cache budget, fail-closed handling of torn and corrupt node files, the
// crash-point sweep over PersistPagedIndex's writes, and the
// ServiceProvider restart path that re-attaches the paged index.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/random.h"
#include "concealer/data_provider.h"
#include "concealer/service_provider.h"
#include "concealer/wire.h"
#include "storage/bplus_tree.h"
#include "storage/encrypted_table.h"
#include "storage/fault_fs.h"
#include "storage/node_store.h"
#include "storage/segment_engine.h"
#include "workload/wifi_generator.h"

namespace concealer {
namespace {

Bytes Key(uint64_t v) {
  Bytes b;
  PutFixed64(&b, v);
  return b;
}

// 16-byte DET-ciphertext-shaped keys: random prefix decides comparisons,
// counter suffix guarantees uniqueness (counters >= `n` never collide with
// stored keys — the absent-probe generator).
Bytes WideKey(Rng* rng, uint64_t counter) {
  Bytes key(16);
  rng->FillBytes(key.data(), 8);
  for (int i = 0; i < 8; ++i) {
    key[8 + i] = static_cast<uint8_t>(counter >> (8 * (7 - i)));
  }
  return key;
}

std::string TempDir() {
  char tmpl[] = "/tmp/concealer-paging-test-XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

void RemoveDirRecursive(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
}

std::unique_ptr<StorageEngine> OpenSegEngine(const std::string& dir,
                                             uint64_t node_cache_bytes) {
  SegmentEngine::Options options;
  options.dir = dir;
  options.node_cache_bytes = node_cache_bytes;
  auto engine = SegmentEngine::Open(options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(*engine);
}

// Flips one byte at `offset` of `path` in place.
void FlipByteAt(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, offset >= 0 ? SEEK_SET : SEEK_END), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
  std::fputc(c ^ 0xff, f);
  ASSERT_EQ(std::fclose(f), 0);
}

long FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size;
}

void TruncateTo(const std::string& path, long size) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(::ftruncate(fileno(f), size), 0);
  ASSERT_EQ(std::fclose(f), 0);
}

// --- Tree level ------------------------------------------------------------

// Builds a resident tree, saves it, attaches a second tree to the file and
// demands bitwise-identical answers on every probe shape — with a cache
// budget so small every batch churns through evictions.
TEST(IndexPagingTest, PagedTreeMatchesResidentByteIdentical) {
  const std::string dir = TempDir();
  const size_t n = 5000;
  Rng rng(0xbee);
  std::vector<Bytes> keys;
  keys.reserve(n);
  for (uint64_t i = 0; i < n; ++i) keys.push_back(WideKey(&rng, i));

  BPlusTree resident;
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(resident.Insert(keys[i], i).ok());
  }

  NodeStore store({dir + "/index-nodes", /*cache_bytes=*/4096});
  ASSERT_TRUE(resident.SavePaged(&store, /*stamp=*/n).ok());
  ASSERT_TRUE(store.Open().ok());
  EXPECT_EQ(store.stamp(), n);
  EXPECT_GT(store.num_pages(), 10u);

  BPlusTree paged;
  ASSERT_TRUE(paged.AttachPaged(&store).ok());
  EXPECT_TRUE(paged.paged());
  EXPECT_EQ(paged.size(), resident.size());
  EXPECT_EQ(paged.height(), resident.height());

  // Point probes: every stored key plus absent ones.
  for (uint64_t i = 0; i < n; i += 7) {
    uint64_t got = 0;
    bool found = false;
    ASSERT_TRUE(paged.Find(keys[i], &got, &found).ok());
    ASSERT_TRUE(found);
    EXPECT_EQ(got, i);
  }
  for (uint64_t i = 0; i < 64; ++i) {
    Bytes absent = WideKey(&rng, n + i);
    uint64_t got = 0;
    bool found = true;
    ASSERT_TRUE(paged.Find(absent, &got, &found).ok());
    EXPECT_FALSE(found);
  }

  // Bulk probes: sorted batches mixing hits, misses and duplicates must
  // reproduce BulkGet's output array exactly.
  std::vector<Slice> probes;
  for (int i = 0; i < 600; ++i) {
    probes.push_back(keys[rng.Uniform(n)]);
  }
  std::vector<Bytes> absent_storage;
  for (int i = 0; i < 150; ++i) {
    absent_storage.push_back(WideKey(&rng, n + 100 + i));
  }
  for (const Bytes& b : absent_storage) probes.push_back(b);
  probes.push_back(probes[0]);  // Duplicate probe.
  std::sort(probes.begin(), probes.end(),
            [](Slice a, Slice b) { return a.Compare(b) < 0; });
  std::vector<uint64_t> want_ids(probes.size()), got_ids(probes.size());
  const size_t want_hits =
      resident.BulkGet(probes.data(), probes.size(), want_ids.data());
  size_t got_hits = 0;
  ASSERT_TRUE(
      paged.BulkFind(probes.data(), probes.size(), got_ids.data(), &got_hits)
          .ok());
  EXPECT_EQ(got_hits, want_hits);
  EXPECT_EQ(got_ids, want_ids);

  // Ordered iteration: ForEach over the paged tree == Scan over the
  // resident one, pair for pair.
  std::vector<std::pair<Bytes, uint64_t>> want_seq, got_seq;
  resident.Scan([&](Slice k, uint64_t v) {
    want_seq.emplace_back(k.ToBytes(), v);
    return true;
  });
  ASSERT_TRUE(paged
                  .ForEach([&](Slice k, uint64_t v) {
                    got_seq.emplace_back(k.ToBytes(), v);
                    return true;
                  })
                  .ok());
  EXPECT_EQ(got_seq, want_seq);

  // Full integrity scan (loads and checksums every page).
  EXPECT_TRUE(paged.CheckInvariants().ok());

  RemoveDirRecursive(dir);
}

TEST(IndexPagingTest, TinyBudgetEvictsAndReloadsIdentically) {
  const std::string dir = TempDir();
  const size_t n = 3000;
  Rng rng(0xcafe);
  std::vector<Bytes> keys;
  for (uint64_t i = 0; i < n; ++i) keys.push_back(WideKey(&rng, i));
  BPlusTree resident;
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(resident.Insert(keys[i], i).ok());
  }
  NodeStore store({dir + "/index-nodes", /*cache_bytes=*/2048});
  ASSERT_TRUE(resident.SavePaged(&store, 1).ok());
  ASSERT_TRUE(store.Open().ok());
  BPlusTree paged;
  ASSERT_TRUE(paged.AttachPaged(&store).ok());

  // The budget holds only a page or two, so three full passes force every
  // page to be loaded, evicted and reloaded — answers never change.
  for (int pass = 0; pass < 3; ++pass) {
    for (uint64_t i = 0; i < n; i += 11) {
      uint64_t got = 0;
      bool found = false;
      ASSERT_TRUE(paged.Find(keys[i], &got, &found).ok());
      ASSERT_TRUE(found);
      ASSERT_EQ(got, i);
    }
  }
  EXPECT_GT(store.loads(), static_cast<uint64_t>(store.num_pages()))
      << "tiny budget never evicted — reload path untested";
  EXPECT_LE(store.cache_bytes(), 2048u + 4096u)
      << "cache grew far past its budget";

  // Dropping the cache entirely is always safe.
  store.DropCache();
  uint64_t got = 0;
  bool found = false;
  ASSERT_TRUE(paged.Find(keys[42], &got, &found).ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(got, 42u);
  RemoveDirRecursive(dir);
}

TEST(IndexPagingTest, InsertDeleteAfterAttachMaterializesLeaves) {
  const std::string dir = TempDir();
  const size_t n = 2000;
  Rng rng(0xd00d);
  std::vector<Bytes> keys;
  for (uint64_t i = 0; i < n; ++i) keys.push_back(WideKey(&rng, i));
  BPlusTree tree;
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(tree.Insert(keys[i], i).ok());
  }
  NodeStore store({dir + "/index-nodes", 1u << 20});
  ASSERT_TRUE(tree.SavePaged(&store, 1).ok());
  ASSERT_TRUE(store.Open().ok());
  BPlusTree paged;
  ASSERT_TRUE(paged.AttachPaged(&store).ok());

  // Mutations land in paged leaves: the touched leaf materializes, the
  // rest stay on disk. Answers and invariants hold throughout.
  std::vector<Bytes> extra;
  for (uint64_t i = 0; i < 300; ++i) {
    extra.push_back(WideKey(&rng, n + i));
    ASSERT_TRUE(paged.Insert(extra.back(), n + i).ok());
  }
  for (uint64_t i = 0; i < n; i += 2) {
    ASSERT_TRUE(paged.Delete(keys[i]).ok());
  }
  EXPECT_EQ(paged.size(), n + 300 - n / 2);
  EXPECT_TRUE(paged.CheckInvariants().ok());
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t got = 0;
    bool found = false;
    ASSERT_TRUE(paged.Find(keys[i], &got, &found).ok());
    ASSERT_EQ(found, i % 2 == 1) << i;
    if (found) {
      ASSERT_EQ(got, i);
    }
  }

  // Re-persisting a mixed tree (materialized + still-paged leaves) streams
  // untouched pages through and re-serializes the rest.
  ASSERT_TRUE(paged.SavePaged(&store, 2).ok());
  ASSERT_TRUE(store.Open().ok());
  BPlusTree paged2;
  ASSERT_TRUE(paged2.AttachPaged(&store).ok());
  EXPECT_EQ(paged2.size(), paged.size());
  EXPECT_TRUE(paged2.CheckInvariants().ok());
  uint64_t got = 0;
  bool found = false;
  ASSERT_TRUE(paged2.Find(extra[7], &got, &found).ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(got, n + 7);
  RemoveDirRecursive(dir);
}

// --- Corruption / staleness ------------------------------------------------

TEST(IndexPagingTest, TornTailFailsOpenCleanly) {
  const std::string dir = TempDir();
  BPlusTree tree;
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree.Insert(Key(i), i).ok());
  }
  const std::string path = dir + "/index-nodes";
  NodeStore store({path, 1u << 20});
  ASSERT_TRUE(tree.SavePaged(&store, 1).ok());
  ASSERT_TRUE(store.Open().ok());
  store.Close();

  // A crash mid-write leaves a file without a valid footer at its end.
  // Every truncation point must fail Open() — never attach garbage.
  const long size = FileSize(path);
  for (long cut : {size - 1, size - 17, size / 2, 24L, 1L}) {
    SCOPED_TRACE("truncated to " + std::to_string(cut));
    TruncateTo(path, cut);
    NodeStore torn({path, 1u << 20});
    EXPECT_FALSE(torn.Open().ok());
    EXPECT_FALSE(torn.is_open());
  }
  RemoveDirRecursive(dir);
}

TEST(IndexPagingTest, CorruptLeafPageFailsClosed) {
  const std::string dir = TempDir();
  auto table = std::make_unique<EncryptedTable>(
      "t", 2, 1, OpenSegEngine(dir, /*node_cache_bytes=*/4096));
  const uint64_t n = 2000;
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(table->Insert(Row{{Bytes{uint8_t(i)}, Key(i)}}).ok());
  }
  ASSERT_TRUE(table->PersistPagedIndex().ok());
  ASSERT_TRUE(table->paged_index());

  // Flip a byte inside the first leaf page's frame body. The footer, page
  // table and directory still verify, so the damage is only discoverable
  // when a probe pins that page — and then it must surface as an error,
  // not a wrong answer.
  NodeStore* ns = table->engine()->node_store();
  FlipByteAt(ns->path(), 25);
  ns->DropCache();

  // A direct page read reports corruption.
  EXPECT_FALSE(ns->GetPage(0).ok());

  // A batch that spans every leaf hits the bad page: FetchRefs fails
  // closed — no refs, stats untouched.
  table->ResetStats();
  std::vector<Bytes> all_keys;
  for (uint64_t i = 0; i < n; ++i) all_keys.push_back(Key(i));
  std::vector<RowRef> refs;
  EXPECT_FALSE(table->FetchRefs(all_keys, &refs).ok());
  EXPECT_TRUE(refs.empty());
  const TableStats stats = table->stats();
  EXPECT_EQ(stats.index_probes, 0u);
  EXPECT_EQ(stats.rows_fetched, 0u);

  // The per-key path fails closed too.
  SetBulkIndexProbing(false);
  refs.clear();
  EXPECT_FALSE(table->FetchRefs(all_keys, &refs).ok());
  SetBulkIndexProbing(true);
  EXPECT_TRUE(refs.empty());

  // CheckInvariants doubles as the full-file integrity scan.
  // (Through the table: a fresh attach at recovery also refuses the file
  // only lazily — the directory is intact — so recovery-time protection
  // for leaf damage is the per-probe checksum, exactly what ran above.)
  table.reset();
  RemoveDirRecursive(dir);
}

TEST(IndexPagingTest, CorruptDirectoryFallsBackAtRecovery) {
  const std::string dir = TempDir();
  const std::string sidecar = dir + "/index.sidecar";
  const uint64_t n = 1500;
  {
    auto table = std::make_unique<EncryptedTable>(
        "t", 2, 1, OpenSegEngine(dir, 1u << 20));
    for (uint64_t i = 0; i < n; ++i) {
      ASSERT_TRUE(table->Insert(Row{{Bytes{uint8_t(i)}, Key(i)}}).ok());
    }
    ASSERT_TRUE(table->PersistPagedIndex().ok());
    ASSERT_TRUE(table->engine()->Sync().ok());
  }
  // Corrupt the tree directory (the interior-node skeleton): its frame
  // checksum breaks, Open() fails, and recovery must fall through to the
  // row-scan rebuild — fail closed, then heal, never serve a wrong tree.
  {
    NodeStore probe({dir + "/index-nodes", 1u << 20});
    ASSERT_TRUE(probe.Open().ok());
    // Directory frame body sits between the page table and the footer;
    // flip a byte a fixed distance before the footer frame (footer body
    // is 48 bytes + 24-byte frame header).
    FlipByteAt(dir + "/index-nodes", -(48 + 24 + 4));
    NodeStore again({dir + "/index-nodes", 1u << 20});
    EXPECT_FALSE(again.Open().ok());
  }
  {
    auto table = std::make_unique<EncryptedTable>(
        "t", 2, 1, OpenSegEngine(dir, 1u << 20));
    ASSERT_TRUE(table->RecoverIndex(sidecar).ok());
    EXPECT_FALSE(table->paged_index());  // Fell back to a resident rebuild.
    auto rows = table->FetchByIndexKeys({Key(3), Key(n - 1)});
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->size(), 2u);
  }
  RemoveDirRecursive(dir);
}

TEST(IndexPagingTest, StaleStampIgnoredAtRecovery) {
  const std::string dir = TempDir();
  const std::string sidecar = dir + "/index.sidecar";
  {
    auto table = std::make_unique<EncryptedTable>(
        "t", 2, 1, OpenSegEngine(dir, 1u << 20));
    for (uint64_t i = 0; i < 500; ++i) {
      ASSERT_TRUE(table->Insert(Row{{Bytes{uint8_t(i)}, Key(i)}}).ok());
    }
    ASSERT_TRUE(table->PersistPagedIndex().ok());
    // One more row AFTER the node-file dump: its stamp is now stale.
    ASSERT_TRUE(table->Insert(Row{{Bytes{0xaa}, Key(9999)}}).ok());
    ASSERT_TRUE(table->engine()->Sync().ok());
  }
  {
    auto table = std::make_unique<EncryptedTable>(
        "t", 2, 1, OpenSegEngine(dir, 1u << 20));
    ASSERT_TRUE(table->RecoverIndex(sidecar).ok());
    EXPECT_FALSE(table->paged_index());  // Stale node file was ignored.
    auto rows = table->FetchByIndexKeys({Key(9999)});
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->size(), 1u);  // The post-dump row is indexed.
    EXPECT_EQ((*rows)[0].columns[0], Column(Bytes{0xaa}));
  }
  RemoveDirRecursive(dir);
}

TEST(IndexPagingTest, FreshNodeFileAttachesAtRecovery) {
  const std::string dir = TempDir();
  const std::string sidecar = dir + "/index.sidecar";
  const uint64_t n = 1200;
  std::vector<uint64_t> want_ids;
  {
    auto table = std::make_unique<EncryptedTable>(
        "t", 2, 1, OpenSegEngine(dir, 1u << 20));
    for (uint64_t i = 0; i < n; ++i) {
      ASSERT_TRUE(table->Insert(Row{{Bytes{uint8_t(i)}, Key(i)}}).ok());
    }
    ASSERT_TRUE(table->PersistPagedIndex().ok());
    ASSERT_TRUE(table->engine()->Sync().ok());
    std::vector<RowRef> refs;
    std::vector<Bytes> probes;
    for (uint64_t i = 0; i < n; i += 3) probes.push_back(Key(i));
    ASSERT_TRUE(table->FetchRefs(probes, &refs).ok());
    for (const RowRef& r : refs) want_ids.push_back(r.row_id);
  }
  {
    auto table = std::make_unique<EncryptedTable>(
        "t", 2, 1, OpenSegEngine(dir, /*node_cache_bytes=*/4096));
    // No sidecar was ever written: recovery must attach the node file.
    ASSERT_TRUE(table->RecoverIndex(sidecar).ok());
    EXPECT_TRUE(table->paged_index());
    std::vector<RowRef> refs;
    std::vector<Bytes> probes;
    for (uint64_t i = 0; i < n; i += 3) probes.push_back(Key(i));
    ASSERT_TRUE(table->FetchRefs(probes, &refs).ok());
    std::vector<uint64_t> got_ids;
    for (const RowRef& r : refs) got_ids.push_back(r.row_id);
    EXPECT_EQ(got_ids, want_ids);
  }
  RemoveDirRecursive(dir);
}

// --- Crash sweep over the node-file writer ---------------------------------
// Every write/fsync/rename the NodeFileBuilder issues goes through
// fault_fs, so the sweep enumerates them: fail each one (alternating torn
// and clean), then demand (a) PersistPagedIndex reports the failure, (b)
// recovery after the "crash" serves byte-identical answers, and (c) a
// re-persist succeeds.

TEST(IndexPagingTest, PersistCrashSweepRecovers) {
  const uint64_t n = 400;
  std::vector<Bytes> probes;
  for (uint64_t i = 0; i < n; i += 5) probes.push_back(Key(i));

  auto build = [&](const std::string& dir) {
    auto table = std::make_unique<EncryptedTable>(
        "t", 2, 1, OpenSegEngine(dir, 1u << 20));
    for (uint64_t i = 0; i < n; ++i) {
      EXPECT_TRUE(table->Insert(Row{{Bytes{uint8_t(i)}, Key(i)}}).ok());
    }
    return table;
  };
  auto probe_ids = [&](EncryptedTable* table) {
    std::vector<RowRef> refs;
    EXPECT_TRUE(table->FetchRefs(probes, &refs).ok());
    std::vector<uint64_t> ids;
    for (const RowRef& r : refs) ids.push_back(r.row_id);
    return ids;
  };

  // Reference run: count the ops and record the expected answers.
  uint64_t num_ops = 0;
  std::vector<uint64_t> want_ids;
  {
    const std::string dir = TempDir();
    auto table = build(dir);
    want_ids = probe_ids(table.get());
    ASSERT_FALSE(want_ids.empty());
    fault_fs::Arm(0);  // Count mode.
    ASSERT_TRUE(table->PersistPagedIndex().ok());
    num_ops = fault_fs::OpsIssued();
    fault_fs::Disarm();
    EXPECT_EQ(probe_ids(table.get()), want_ids);
    table.reset();
    RemoveDirRecursive(dir);
  }
  ASSERT_GE(num_ops, 4u) << "node-file build issued too little I/O";
  ASSERT_LE(num_ops, 200u) << "node-file build too large to sweep";

  for (uint64_t k = 1; k <= num_ops; ++k) {
    SCOPED_TRACE("crash at op " + std::to_string(k) + " of " +
                 std::to_string(num_ops));
    const std::string dir = TempDir();
    const std::string sidecar = dir + "/index.sidecar";
    {
      auto table = build(dir);
      ASSERT_TRUE(table->PersistIndex(sidecar).ok());
      ASSERT_TRUE(table->engine()->Sync().ok());
      fault_fs::Arm(k, /*torn=*/(k % 2) == 0);
      const Status st = table->PersistPagedIndex();
      EXPECT_TRUE(fault_fs::Triggered());
      EXPECT_FALSE(st.ok()) << "op " << k << " failure was swallowed";
      // Keep the shim down through destruction, like a real crash.
    }
    fault_fs::Disarm();

    // Reopen. Whatever the crash left — no node file, a stray .tmp, or a
    // complete renamed file — recovery must answer identically. The
    // engine recovers the durable rows; only the index needs rebuilding.
    auto table = std::make_unique<EncryptedTable>(
        "t", 2, 1, OpenSegEngine(dir, 1u << 20));
    ASSERT_TRUE(table->RecoverIndex(sidecar).ok());
    EXPECT_EQ(probe_ids(table.get()), want_ids);
    // And the next persist heals the node file for good.
    ASSERT_TRUE(table->PersistPagedIndex().ok());
    EXPECT_TRUE(table->paged_index());
    EXPECT_EQ(probe_ids(table.get()), want_ids);
    table.reset();
    RemoveDirRecursive(dir);
  }
}

// --- Provider level ----------------------------------------------------------

ConcealerConfig PagingTestConfig() {
  ConcealerConfig config;
  config.key_buckets = {8};
  config.key_domains = {20};
  config.time_buckets = 24;
  config.num_cell_ids = 40;
  config.epoch_seconds = 86400;
  config.time_quantum = 60;
  return config;
}

std::vector<PlainTuple> PagingTestTuples(uint64_t days) {
  WifiConfig wifi;
  wifi.num_access_points = 20;
  wifi.num_devices = 50;
  wifi.start_time = 0;
  wifi.duration_seconds = days * 86400;
  wifi.total_rows = 900 * days;
  wifi.seed = 11;
  return WifiGenerator(wifi).Generate();
}

TEST(IndexPagingTest, ProviderRestartAttachesAndAnswersIdentically) {
  const ConcealerConfig config = PagingTestConfig();
  DataProvider dp(config, Bytes(32, 0x71));
  auto epochs = dp.EncryptAll(PagingTestTuples(2));
  ASSERT_TRUE(epochs.ok());
  ASSERT_GE(epochs->size(), 2u);

  std::vector<Query> queries;
  for (int i = 0; i < 6; ++i) {
    Query q;
    q.agg = Aggregate::kCount;
    q.key_values = {{uint64_t(2 + 3 * i)}};
    q.time_lo = (i % 2) * 86400 + 2 * 3600;
    q.time_hi = (i % 2) * 86400 + 7 * 3600;
    queries.push_back(q);
  }

  // Memory-engine reference answers.
  std::vector<Bytes> want;
  {
    ServiceProvider sp(config, dp.shared_secret(), StorageOptions{});
    for (const auto& e : *epochs) ASSERT_TRUE(sp.IngestEpoch(e).ok());
    for (const Query& q : queries) {
      auto result = sp.Execute(q);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      want.push_back(SerializeQueryResult(*result));
    }
  }

  const std::string dir = TempDir();
  StorageOptions options;
  options.engine = StorageOptions::Engine::kMmap;
  options.dir = dir;
  // Small budget: the provider serves paged probes through real evictions.
  options.node_cache_bytes = 16 << 10;
  {
    auto sp = ServiceProvider::Open(config, dp.shared_secret(), options);
    ASSERT_TRUE(sp.ok()) << sp.status().ToString();
    for (const auto& e : *epochs) ASSERT_TRUE((*sp)->IngestEpoch(e).ok());
    // Ingest persisted the paged index on the geometric schedule (first
    // epoch at the latest), so the live provider is already paging.
    EXPECT_TRUE((*sp)->table().paged_index());
    for (size_t i = 0; i < queries.size(); ++i) {
      auto result = (*sp)->Execute(queries[i]);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(SerializeQueryResult(*result), want[i]) << i;
    }
  }
  {
    // Restart: recovery attaches the node file when its stamp is fresh
    // (the last ingest persisted it) and answers stay byte-identical.
    auto sp = ServiceProvider::Open(config, dp.shared_secret(), options);
    ASSERT_TRUE(sp.ok()) << sp.status().ToString();
    for (size_t i = 0; i < queries.size(); ++i) {
      auto result = (*sp)->Execute(queries[i]);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(SerializeQueryResult(*result), want[i]) << i;
    }
    sp->reset();
  }
  RemoveDirRecursive(dir);
}

TEST(IndexPagingTest, EvictingEpochsDropsNodePages) {
  const std::string dir = TempDir();
  auto table = std::make_unique<EncryptedTable>(
      "t", 2, 1, OpenSegEngine(dir, 1u << 20));
  for (uint64_t i = 0; i < 800; ++i) {
    ASSERT_TRUE(table->Insert(Row{{Bytes{uint8_t(i)}, Key(i)}}).ok());
  }
  ASSERT_TRUE(table->engine()->SealSegment().ok());
  ASSERT_TRUE(table->PersistPagedIndex().ok());
  NodeStore* ns = table->engine()->node_store();

  // Warm the node cache, then evict the (only) segment range: the engine
  // drops the whole node cache with it — DET index keys scatter an
  // epoch's rows across the key space, so no smaller range would do.
  std::vector<RowRef> refs;
  ASSERT_TRUE(table->FetchRefs({Key(1), Key(700)}, &refs).ok());
  EXPECT_GT(ns->cache_bytes(), 0u);
  const uint32_t num_segments = table->engine()->NumSegments();
  ASSERT_GT(num_segments, 0u);
  ASSERT_TRUE(table->engine()->EvictSegments(0, num_segments - 1).ok());
  EXPECT_EQ(ns->cache_bytes(), 0u);

  // Reload and probe again: pages come back on demand.
  ASSERT_TRUE(table->engine()->LoadSegments(0, num_segments - 1).ok());
  refs.clear();
  ASSERT_TRUE(table->FetchRefs({Key(700)}, &refs).ok());
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].row_id, 700u);
  table.reset();
  RemoveDirRecursive(dir);
}

}  // namespace
}  // namespace concealer
