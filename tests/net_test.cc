// Network front door tests: wire-format round trips and fail-closed
// parsing, the epoll server end to end over real sockets (byte-identity
// with the in-process registry, health, deadline shedding, per-connection
// fail-closed on garbage, admin gating, graceful drain semantics), the
// wire fault shim (torn writes, stalls), and the crash sweep: kill the
// server at every socket I/O point of a mixed static/dynamic workload,
// restart on the directory it left behind, and require byte-identical
// answers through a retrying client.
//
// Byte-identity follows durability_test.cc's rule: probes run in STATIC
// mode (dynamic-mode results are rng-shaped — the random-bin fill shows
// up in rows_fetched), and static answers are invariant under §6
// rewrites, so pre-crash and post-restart serialized results must match
// exactly.
//
// Every suite here matches the Net* TSan filter (CMakeLists
// CONCEALER_TSAN_SUITES): the server is one loop thread + pool workers +
// test threads, exactly the interleavings TSan is for.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "concealer/data_provider.h"
#include "concealer/epoch_io.h"
#include "concealer/wire.h"
#include "enclave/registry.h"
#include "net/client.h"
#include "net/net_fault.h"
#include "net/server.h"
#include "net/wire_format.h"
#include "service/query_service.h"
#include "service/retry.h"
#include "service/tenant_registry.h"
#include "storage/fault_fs.h"

namespace concealer {
namespace {

using net::CallOptions;
using net::ConcealerClient;
using net::ConcealerServer;
using net::HealthInfo;
using net::MsgType;
using net::NetHeader;
using net::ServerOptions;
using net::WallMs;

std::string TempDir() {
  char tmpl[] = "/tmp/concealer-net-test-XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

void RemoveDirRecursive(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
}

ConcealerConfig NetTestConfig() {
  ConcealerConfig config;
  config.key_buckets = {8};
  config.key_domains = {16};
  config.time_buckets = 24;
  config.num_cell_ids = 40;
  config.epoch_seconds = 86400;
  config.time_quantum = 60;
  return config;
}

/// One tenant's DP side: secret, one user ("alice"), one day of readings
/// encrypted ONCE — every run (and every sweep iteration) ingests the
/// same ciphertexts, keeping static answers byte-reproducible.
struct TenantFixture {
  std::string id;
  ConcealerConfig config;
  std::unique_ptr<DataProvider> dp;
  std::vector<EncryptedEpoch> epochs;
  Bytes user_secret;
};

TenantFixture MakeTenant(const std::string& id, uint8_t seed) {
  TenantFixture t;
  t.id = id;
  t.config = NetTestConfig();
  t.dp = std::make_unique<DataProvider>(t.config, Bytes(32, seed));
  t.user_secret = Bytes{'p', 'w', seed};
  EXPECT_TRUE(t.dp->RegisterUser("alice", Slice(t.user_secret), "").ok());
  std::vector<PlainTuple> readings;
  for (uint64_t minute = 0; minute < 400; ++minute) {
    PlainTuple r;
    r.keys = {(minute * (seed % 5 + 1)) % 16};
    r.time = minute * 120;
    readings.push_back(std::move(r));
  }
  auto epochs = t.dp->EncryptAll(readings);
  EXPECT_TRUE(epochs.ok());
  t.epochs = std::move(*epochs);
  return t;
}

Bytes AliceProof(const TenantFixture& t) {
  return Registry::MakeProof(Slice(t.user_secret), "alice");
}

void Provision(TenantRegistry* registry, const TenantFixture& t) {
  ASSERT_TRUE(
      registry->CreateTenant(t.id, t.config, t.dp->shared_secret()).ok());
  ASSERT_TRUE(
      registry->LoadRegistry(t.id, Slice(t.dp->EncryptedRegistry())).ok());
  for (const auto& e : t.epochs) {
    ASSERT_TRUE(registry->IngestEpoch(t.id, e).ok());
  }
}

Query CountQuery(uint64_t key, uint64_t lo_h, uint64_t hi_h) {
  Query q;
  q.agg = Aggregate::kCount;
  q.key_values = {{key}};
  q.time_lo = lo_h * 3600;
  q.time_hi = hi_h * 3600;
  return q;
}

// --- Wire format -----------------------------------------------------------

TEST(NetWireTest, StatusCodeWireMappingRoundTrips) {
  const Status::Code codes[] = {
      Status::Code::kOk,
      Status::Code::kInvalidArgument,
      Status::Code::kNotFound,
      Status::Code::kCorruption,
      Status::Code::kPermissionDenied,
      Status::Code::kFailedPrecondition,
      Status::Code::kInternal,
      Status::Code::kUnimplemented,
      Status::Code::kUnavailable,
      Status::Code::kDeadlineExceeded,
  };
  for (Status::Code code : codes) {
    EXPECT_EQ(StatusCodeFromWire(StatusCodeToWire(code)), code);
  }
  // Unknown wire values land on kInternal, never out-of-range enums.
  EXPECT_EQ(StatusCodeFromWire(999), Status::Code::kInternal);
}

TEST(NetWireTest, RequestRoundTrips) {
  NetHeader header;
  header.type = MsgType::kQuery;
  header.request_id = 0x1122334455667788ull;
  header.deadline_unix_ms = 987654321;
  header.tenant_id = "acme-east";
  const Bytes payload{1, 2, 3, 250};
  Bytes frame = net::EncodeRequest(header, Slice(payload));

  size_t off = 0;
  auto body = ReadFramedRecord(Slice(frame), &off);
  ASSERT_TRUE(body.ok());
  auto parsed = net::ParseRequest(*body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->header.type, MsgType::kQuery);
  EXPECT_EQ(parsed->header.request_id, header.request_id);
  EXPECT_EQ(parsed->header.deadline_unix_ms, header.deadline_unix_ms);
  EXPECT_EQ(parsed->header.tenant_id, header.tenant_id);
  EXPECT_EQ(parsed->payload.ToBytes(), payload);
}

TEST(NetWireTest, ResponseCarriesStatusAndRetryAfter) {
  Status status = Status::Unavailable("gate saturated").WithRetryAfterMs(42);
  const Bytes payload{9, 9};
  Bytes frame = net::EncodeResponse(7, status, Slice(payload));
  size_t off = 0;
  auto body = ReadFramedRecord(Slice(frame), &off);
  ASSERT_TRUE(body.ok());
  auto parsed = net::ParseResponse(*body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->request_id, 7u);
  EXPECT_TRUE(parsed->status.IsUnavailable());
  EXPECT_EQ(parsed->status.retry_after_ms(), 42u);
  EXPECT_EQ(parsed->payload, payload);
}

TEST(NetWireTest, QuerySerializationRoundTrips) {
  Query q;
  q.agg = Aggregate::kTopK;
  q.k = 5;
  q.key_values = {{3, 4}, {7}};
  q.time_lo = 123;
  q.time_hi = 456;
  q.observation = "dev-17";
  q.method = RangeMethod::kEBPB;
  q.oblivious = true;
  q.verify = true;
  Bytes data = net::SerializeQuery(q);
  auto back = net::DeserializeQuery(Slice(data));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->agg, q.agg);
  EXPECT_EQ(back->k, q.k);
  EXPECT_EQ(back->key_values, q.key_values);
  EXPECT_EQ(back->time_lo, q.time_lo);
  EXPECT_EQ(back->time_hi, q.time_hi);
  EXPECT_EQ(back->observation, q.observation);
  EXPECT_EQ(back->method, q.method);
  EXPECT_EQ(back->oblivious, q.oblivious);
  EXPECT_EQ(back->verify, q.verify);
}

TEST(NetWireTest, PayloadRoundTrips) {
  net::OpenSessionReq open;
  open.user_id = "alice";
  open.proof = Bytes{1, 2, 3};
  Bytes open_bytes = net::EncodeOpenSessionReq(open);
  auto open2 = net::ParseOpenSessionReq(Slice(open_bytes));
  ASSERT_TRUE(open2.ok());
  EXPECT_EQ(open2->user_id, "alice");
  EXPECT_EQ(open2->proof, open.proof);

  net::QueryReq qr;
  qr.token = "tok";
  qr.encrypted = true;
  qr.query = CountQuery(3, 1, 2);
  Bytes qr_bytes = net::EncodeQueryReq(qr);
  auto qr2 = net::ParseQueryReq(Slice(qr_bytes));
  ASSERT_TRUE(qr2.ok());
  EXPECT_EQ(qr2->token, "tok");
  EXPECT_TRUE(qr2->encrypted);
  EXPECT_EQ(qr2->query.key_values, qr.query.key_values);

  net::QueryBatchReq batch;
  batch.queries = {qr, qr};
  Bytes batch_bytes = net::EncodeQueryBatchReq(batch);
  auto batch2 = net::ParseQueryBatchReq(Slice(batch_bytes));
  ASSERT_TRUE(batch2.ok());
  EXPECT_EQ(batch2->queries.size(), 2u);

  std::vector<net::BatchItem> items(2);
  items[0].status = Status::OK();
  items[0].result = Bytes{5, 6};
  items[1].status = Status::PermissionDenied("nope");
  Bytes items_bytes = net::EncodeBatchItems(items);
  auto items2 = net::ParseBatchItems(Slice(items_bytes));
  ASSERT_TRUE(items2.ok());
  ASSERT_EQ(items2->size(), 2u);
  EXPECT_TRUE((*items2)[0].status.ok());
  EXPECT_EQ((*items2)[0].result, items[0].result);
  EXPECT_TRUE((*items2)[1].status.IsPermissionDenied());

  net::CreateTenantReq create;
  create.config = NetTestConfig();
  create.sk = Bytes(32, 0xab);
  create.qos_weight = 3;
  create.qos_max_inflight = 2;
  Bytes create_bytes = net::EncodeCreateTenantReq(create);
  auto create2 = net::ParseCreateTenantReq(Slice(create_bytes));
  ASSERT_TRUE(create2.ok());
  EXPECT_EQ(create2->sk, create.sk);
  EXPECT_EQ(create2->qos_weight, 3u);
  EXPECT_EQ(create2->config.num_cell_ids, create.config.num_cell_ids);
  EXPECT_EQ(create2->config.key_buckets, create.config.key_buckets);
  EXPECT_EQ(create2->config.key_domains, create.config.key_domains);

  HealthInfo health;
  health.draining = true;
  health.inflight = 4;
  health.open_connections = 2;
  HealthInfo::Tenant sick;
  sick.tenant_id = "acme";
  sick.recovery_code = StatusCodeToWire(Status::Code::kCorruption);
  sick.recovery_message = "bad epoch";
  health.tenants.push_back(sick);
  Bytes health_bytes = net::EncodeHealthInfo(health);
  auto health2 = net::ParseHealthInfo(Slice(health_bytes));
  ASSERT_TRUE(health2.ok());
  EXPECT_TRUE(health2->draining);
  EXPECT_EQ(health2->inflight, 4u);
  ASSERT_EQ(health2->tenants.size(), 1u);
  EXPECT_EQ(health2->tenants[0].tenant_id, "acme");
  EXPECT_EQ(StatusCodeFromWire(health2->tenants[0].recovery_code),
            Status::Code::kCorruption);
  EXPECT_EQ(health2->tenants[0].recovery_message, "bad epoch");
}

TEST(NetWireTest, MalformedPayloadsFailClosed) {
  // Truncations of a valid request body must all parse as errors, never
  // crash and never "succeed" with garbage fields.
  NetHeader header;
  header.type = MsgType::kOpenSession;
  header.request_id = 1;
  header.tenant_id = "t";
  net::OpenSessionReq open;
  open.user_id = "alice";
  open.proof = Bytes{1, 2, 3, 4};
  Bytes frame = net::EncodeRequest(header, Slice(net::EncodeOpenSessionReq(open)));
  size_t off = 0;
  auto body = ReadFramedRecord(Slice(frame), &off);
  ASSERT_TRUE(body.ok());
  for (size_t len = 0; len < body->size(); ++len) {
    auto truncated = net::ParseRequest(Slice(body->data(), len));
    if (!truncated.ok()) continue;  // Header did not fit: fine.
    // Header fit; the truncated payload must now be rejected.
    EXPECT_FALSE(net::ParseOpenSessionReq(truncated->payload).ok())
        << "truncation to " << len << " bytes parsed";
  }
  // A response body is not a request.
  Bytes resp = net::EncodeResponse(1, Status::OK(), Slice());
  off = 0;
  auto resp_body = ReadFramedRecord(Slice(resp), &off);
  ASSERT_TRUE(resp_body.ok());
  EXPECT_FALSE(net::ParseRequest(*resp_body).ok());
  // Out-of-range enums (here: a "bool" of 7) are rejected.
  net::SetDynamicModeReq mode;
  Bytes mode_bytes = net::EncodeSetDynamicModeReq(mode);
  mode_bytes.back() = 7;
  EXPECT_FALSE(net::ParseSetDynamicModeReq(Slice(mode_bytes)).ok());
}

// --- Server fixture --------------------------------------------------------

/// Test-gated execution hook (QueryServiceOptions::execute_fault_hook):
/// while enabled, queries BLOCK inside the service until released — how
/// the drain test holds a request in flight deterministically.
struct ExecuteGate {
  std::mutex mu;
  std::condition_variable cv;
  bool enabled = false;
  int entered = 0;
  bool released = false;

  void Hook() {
    std::unique_lock<std::mutex> lock(mu);
    if (!enabled) return;
    ++entered;
    cv.notify_all();
    cv.wait(lock, [this] { return released; });
  }
  void Enable(bool on) {
    std::lock_guard<std::mutex> lock(mu);
    enabled = on;
  }
  void WaitEntered() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return entered > 0; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu);
    released = true;
    cv.notify_all();
  }
};

struct ServerHarness {
  std::string root;
  std::shared_ptr<ExecuteGate> gate = std::make_shared<ExecuteGate>();
  std::unique_ptr<TenantRegistry> registry;
  std::unique_ptr<ConcealerServer> server;

  explicit ServerHarness(ServerOptions server_options = {},
                         bool mmap_engine = false) {
    root = TempDir();
    TenantRegistryOptions options;
    options.root_dir = root;
    if (mmap_engine) options.storage.engine = StorageOptions::Engine::kMmap;
    options.pool_threads = 4;
    std::shared_ptr<ExecuteGate> gate_ref = gate;
    options.service.execute_fault_hook = [gate_ref] { gate_ref->Hook(); };
    registry = std::make_unique<TenantRegistry>(options);
    server = std::make_unique<ConcealerServer>(registry.get(),
                                               std::move(server_options));
    EXPECT_TRUE(server->Start().ok());
  }
  ~ServerHarness() {
    server.reset();
    registry.reset();
    RemoveDirRecursive(root);
  }

  ConcealerClient Dial() {
    ConcealerClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
    return client;
  }

  /// A raw (non-protocol-speaking) TCP connection to the server.
  int RawDial() {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    struct sockaddr_in addr;
    ::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server->port());
    EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    return fd;
  }
};

/// True if the peer half-closes (EOF) within `timeout_ms`.
bool WaitForEof(int fd, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  if (::poll(&pfd, 1, timeout_ms) <= 0) return false;
  char buf[64];
  return ::recv(fd, buf, sizeof(buf), 0) == 0;
}

// --- Server end to end -----------------------------------------------------

TEST(NetServerTest, QueriesMatchInProcessAnswersByteForByte) {
  ServerHarness harness;
  TenantFixture acme = MakeTenant("acme", 0x31);
  Provision(harness.registry.get(), acme);

  ConcealerClient client = harness.Dial();
  auto wire_token =
      client.OpenSession(acme.id, "alice", Slice(AliceProof(acme)));
  ASSERT_TRUE(wire_token.ok()) << wire_token.status().ToString();
  auto direct_token =
      harness.registry->OpenSession(acme.id, "alice", Slice(AliceProof(acme)));
  ASSERT_TRUE(direct_token.ok());

  for (uint64_t key = 0; key < 6; ++key) {
    Query q = CountQuery(key, key % 3, key % 3 + 4);
    auto over_wire = client.Query(acme.id, *wire_token, q);
    ASSERT_TRUE(over_wire.ok()) << over_wire.status().ToString();
    auto direct = harness.registry->Query(acme.id, *direct_token, q);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(SerializeQueryResult(*over_wire), SerializeQueryResult(*direct))
        << "key " << key;
  }
}

TEST(NetServerTest, EncryptedQueryDecryptsWithUserProof) {
  ServerHarness harness;
  TenantFixture acme = MakeTenant("acme", 0x32);
  Provision(harness.registry.get(), acme);
  ConcealerClient client = harness.Dial();
  auto token = client.OpenSession(acme.id, "alice", Slice(AliceProof(acme)));
  ASSERT_TRUE(token.ok());

  Query q = CountQuery(4, 0, 12);
  auto ciphertext = client.QueryEncrypted(acme.id, *token, q);
  ASSERT_TRUE(ciphertext.ok()) << ciphertext.status().ToString();
  auto decrypted = QueryService::DecryptResult(Slice(AliceProof(acme)),
                                               "alice", Slice(*ciphertext));
  ASSERT_TRUE(decrypted.ok()) << decrypted.status().ToString();

  auto plain = client.Query(acme.id, *token, q);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(SerializeQueryResult(*decrypted), SerializeQueryResult(*plain));
}

TEST(NetServerTest, BatchKeepsPerQueryStatusesInTheirSlots) {
  ServerHarness harness;
  TenantFixture acme = MakeTenant("acme", 0x33);
  Provision(harness.registry.get(), acme);
  ConcealerClient client = harness.Dial();
  auto token = client.OpenSession(acme.id, "alice", Slice(AliceProof(acme)));
  ASSERT_TRUE(token.ok());

  Query good = CountQuery(2, 0, 8);
  Query bad = good;
  bad.observation = "not-alices-device";  // Individualized-query violation.
  auto results = client.QueryBatch(acme.id, *token, {good, bad, good});
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 3u);
  EXPECT_TRUE((*results)[0].ok());
  EXPECT_TRUE((*results)[1].status().IsPermissionDenied())
      << (*results)[1].status().ToString();
  ASSERT_TRUE((*results)[2].ok());
  EXPECT_EQ(SerializeQueryResult(*(*results)[0]),
            SerializeQueryResult(*(*results)[2]));
}

TEST(NetServerTest, AdminPlaneProvisionsWireOnly) {
  ServerOptions options;
  options.allow_admin = true;
  ServerHarness harness(options);
  TenantFixture acme = MakeTenant("acme", 0x34);
  ConcealerClient client = harness.Dial();

  // Whole lifecycle over the wire: create, load registry, ingest, query.
  ASSERT_TRUE(client
                  .CreateTenant(acme.id, acme.config,
                                Slice(acme.dp->shared_secret()))
                  .ok());
  ASSERT_TRUE(
      client.LoadRegistry(acme.id, Slice(acme.dp->EncryptedRegistry())).ok());
  for (const auto& e : acme.epochs) {
    ASSERT_TRUE(client.IngestEpoch(acme.id, e).ok());
  }
  auto token = client.OpenSession(acme.id, "alice", Slice(AliceProof(acme)));
  ASSERT_TRUE(token.ok()) << token.status().ToString();
  auto result = client.Query(acme.id, *token, CountQuery(0, 0, 13));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->count, 0u);
  EXPECT_TRUE(client.SetDynamicMode(acme.id, true).ok());
  EXPECT_TRUE(client.SetDynamicMode(acme.id, false).ok());
}

TEST(NetServerTest, AdminPlaneDisabledByDefault) {
  ServerHarness harness;
  TenantFixture acme = MakeTenant("acme", 0x35);
  ConcealerClient client = harness.Dial();
  Status created = client.CreateTenant(acme.id, acme.config,
                                       Slice(acme.dp->shared_secret()));
  EXPECT_TRUE(created.IsPermissionDenied()) << created.ToString();
  EXPECT_TRUE(client.connected());  // Policy refusal, not a wire failure.
}

TEST(NetServerTest, HealthReportsTenantRecoveryState) {
  ServerHarness harness;
  TenantFixture acme = MakeTenant("acme", 0x36);
  Provision(harness.registry.get(), acme);
  ConcealerClient client = harness.Dial();
  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_FALSE(health->draining);
  ASSERT_EQ(health->tenants.size(), 1u);
  EXPECT_EQ(health->tenants[0].tenant_id, "acme");
  EXPECT_EQ(StatusCodeFromWire(health->tenants[0].recovery_code),
            Status::Code::kOk);
}

TEST(NetServerTest, ExpiredDeadlineShedBeforeEnclaveWork) {
  ServerHarness harness;
  TenantFixture acme = MakeTenant("acme", 0x37);
  Provision(harness.registry.get(), acme);
  ConcealerClient client = harness.Dial();
  auto token = client.OpenSession(acme.id, "alice", Slice(AliceProof(acme)));
  ASSERT_TRUE(token.ok());

  CallOptions expired;
  expired.deadline_unix_ms = WallMs() - 10'000;
  auto result = client.Query(acme.id, *token, CountQuery(1, 0, 4), expired);
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  EXPECT_GE(harness.server->stats().shed_deadline, 1u);
  // The connection survives: shedding is per request, not per peer.
  EXPECT_TRUE(client.Query(acme.id, *token, CountQuery(1, 0, 4)).ok());
}

TEST(NetServerTest, GarbageFrameClosesOnlyThatConnection) {
  ServerHarness harness;
  TenantFixture acme = MakeTenant("acme", 0x38);
  Provision(harness.registry.get(), acme);
  ConcealerClient good = harness.Dial();
  auto token = good.OpenSession(acme.id, "alice", Slice(AliceProof(acme)));
  ASSERT_TRUE(token.ok());

  // A raw peer speaking garbage gets cut off...
  int fd = harness.RawDial();
  const char garbage[] = "NOT A CONCEALER FRAME AT ALL................";
  ASSERT_GT(::send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL), 0);
  EXPECT_TRUE(WaitForEof(fd, 5'000));
  ::close(fd);

  // ...while the well-behaved connection keeps being served.
  EXPECT_TRUE(good.Query(acme.id, *token, CountQuery(2, 0, 6)).ok());
  EXPECT_GE(harness.server->stats().malformed_closed, 1u);
}

TEST(NetServerTest, HostileDeclaredLengthClosesWithoutBuffering) {
  ServerOptions options;
  options.max_frame_bytes = 4096;
  ServerHarness harness(options);
  int fd = harness.RawDial();
  // A structurally valid frame header declaring an 8 GB body. The server
  // must hang up on the header alone — long before 8 GB could arrive.
  Bytes frame;
  AppendFramedRecord(&frame, Slice(Bytes(16, 0)));
  const uint64_t hostile = 8ull << 30;
  for (int i = 0; i < 8; ++i) {
    // Length field lives at bytes 16..23 of the epoch_io frame header.
    frame[16 + i] = static_cast<uint8_t>((hostile >> (8 * i)) & 0xff);
  }
  ASSERT_GT(::send(fd, frame.data(), 24, MSG_NOSIGNAL), 0);
  EXPECT_TRUE(WaitForEof(fd, 5'000));
  ::close(fd);
  EXPECT_GE(harness.server->stats().malformed_closed, 1u);
}

TEST(NetServerTest, IdleConnectionsAreSwept) {
  ServerOptions options;
  options.idle_timeout_ms = 100;
  ServerHarness harness(options);
  int fd = harness.RawDial();
  // Say nothing; the idle sweep must hang up on us.
  EXPECT_TRUE(WaitForEof(fd, 5'000));
  ::close(fd);
  EXPECT_GE(harness.server->stats().idle_closed, 1u);
}

TEST(NetServerTest, DrainFinishesInflightShedsNewAndReportsDraining) {
  ServerOptions options;
  options.drain_retry_after_ms = 777;  // Distinctive: identifies the shed.
  ServerHarness harness(options, /*mmap_engine=*/true);
  TenantFixture acme = MakeTenant("acme", 0x39);
  Provision(harness.registry.get(), acme);
  ConcealerClient client = harness.Dial();
  ConcealerClient prober = harness.Dial();
  auto token = client.OpenSession(acme.id, "alice", Slice(AliceProof(acme)));
  ASSERT_TRUE(token.ok());
  auto prober_token =
      prober.OpenSession(acme.id, "alice", Slice(AliceProof(acme)));
  ASSERT_TRUE(prober_token.ok());

  // Hold one query in flight inside the service...
  harness.gate->Enable(true);
  StatusOr<QueryResult> inflight = Status::Internal("not run");
  std::thread slow([&] {
    inflight = client.Query(acme.id, *token, CountQuery(3, 0, 9));
  });
  harness.gate->WaitEntered();
  harness.gate->Enable(false);  // Only the held query stays blocked.

  // ...start draining while it is stuck...
  Status drained = Status::Internal("not run");
  std::thread drainer([&] { drained = harness.server->Drain(); });
  while (!harness.server->stats().draining) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // ...new work is refused with Unavailable + the drain's retry-after,
  // while health still answers (it is what an orchestrator polls now).
  auto shed = prober.Query(acme.id, *prober_token, CountQuery(3, 0, 9));
  ASSERT_TRUE(shed.status().IsUnavailable()) << shed.status().ToString();
  EXPECT_EQ(shed.status().retry_after_ms(), 777u);
  auto health = prober.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_TRUE(health->draining);

  // ...then the held query is released, completes, and its response is
  // still delivered: drain finishes in-flight work instead of dropping it.
  harness.gate->Release();
  slow.join();
  drainer.join();
  ASSERT_TRUE(inflight.ok()) << inflight.status().ToString();
  EXPECT_TRUE(drained.ok()) << drained.ToString();
  EXPECT_GE(harness.server->stats().shed_draining, 1u);
}

TEST(NetServerTest, RetryingClientRidesOutRestartByteIdentically) {
  const std::string root = TempDir();
  TenantFixture acme = MakeTenant("acme", 0x3a);
  TenantRegistryOptions registry_options;
  registry_options.root_dir = root;
  registry_options.storage.engine = StorageOptions::Engine::kMmap;

  uint16_t port = 0;
  Bytes want;
  const Query probe = CountQuery(5, 0, 10);
  ConcealerClient client;
  {
    auto registry = std::make_unique<TenantRegistry>(registry_options);
    Provision(registry.get(), acme);
    auto server = std::make_unique<ConcealerServer>(registry.get());
    ASSERT_TRUE(server->Start().ok());
    port = server->port();
    ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
    auto token = client.OpenSession(acme.id, "alice", Slice(AliceProof(acme)));
    ASSERT_TRUE(token.ok());
    auto before = client.Query(acme.id, *token, probe);
    ASSERT_TRUE(before.ok());
    want = SerializeQueryResult(*before);
    server->Abort();  // kill -9 stand-in: no drain, no checkpoint.
    server.reset();
    registry.reset();
  }

  // The client is now talking to a dead server: fail-closed, retryable.
  {
    auto token = client.OpenSession(acme.id, "alice", Slice(AliceProof(acme)));
    EXPECT_TRUE(token.status().IsUnavailable()) << token.status().ToString();
    EXPECT_FALSE(client.connected());
  }

  // Restart on the SAME directory and port; recover; serve again.
  auto registry = std::make_unique<TenantRegistry>(registry_options);
  ASSERT_TRUE(registry
                  ->OpenAll([&](const std::string& id)
                                -> StatusOr<TenantRegistry::TenantCredentials> {
                    if (id != acme.id) return Status::NotFound("unknown");
                    return TenantRegistry::TenantCredentials{
                        acme.config, acme.dp->shared_secret()};
                  })
                  .ok());
  // Sessions and the user registry are in-memory by design; restart means
  // re-loading the registry blob and re-opening sessions.
  ASSERT_TRUE(
      registry->LoadRegistry(acme.id, Slice(acme.dp->EncryptedRegistry()))
          .ok());
  ServerOptions same_port;
  same_port.port = port;
  auto server = std::make_unique<ConcealerServer>(registry.get(), same_port);
  ASSERT_TRUE(server->Start().ok());
  ASSERT_EQ(server->port(), port);

  // The disconnected client redials and must read the exact answer bytes
  // the pre-crash server gave.
  RetryOptions retry;
  retry.max_attempts = 50;
  retry.initial_backoff_ms = 5;
  auto token = RetryOnUnavailable(
      [&]() -> StatusOr<std::string> {
        if (!client.connected() && !client.Reconnect().ok()) {
          return Status::Unavailable("still down");
        }
        return client.OpenSession(acme.id, "alice", Slice(AliceProof(acme)));
      },
      retry);
  ASSERT_TRUE(token.ok()) << token.status().ToString();
  auto after = client.RetryQuery(acme.id, *token, probe, retry);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(SerializeQueryResult(*after), want);

  server.reset();
  registry.reset();
  RemoveDirRecursive(root);
}

// --- Wire fault shim -------------------------------------------------------

TEST(NetFaultTest, CountModePassesThrough) {
  ServerHarness harness;
  TenantFixture acme = MakeTenant("acme", 0x41);
  Provision(harness.registry.get(), acme);
  ConcealerClient client = harness.Dial();
  auto token = client.OpenSession(acme.id, "alice", Slice(AliceProof(acme)));
  ASSERT_TRUE(token.ok());

  net_fault::Arm(0);
  EXPECT_TRUE(client.Query(acme.id, *token, CountQuery(1, 0, 5)).ok());
  const uint64_t ops = net_fault::OpsIssued();
  EXPECT_FALSE(net_fault::Triggered());
  net_fault::Disarm();
  // One query = client send + server recv + server send + client recv at
  // minimum; EAGAIN re-reads may add a few more.
  EXPECT_GE(ops, 4u);
}

TEST(NetFaultTest, TornWireSurfacesAsUnavailableAndReconnectHeals) {
  ServerHarness harness;
  TenantFixture acme = MakeTenant("acme", 0x42);
  Provision(harness.registry.get(), acme);
  ConcealerClient client = harness.Dial();
  auto token = client.OpenSession(acme.id, "alice", Slice(AliceProof(acme)));
  ASSERT_TRUE(token.ok());

  // Tear the exchange's 2nd socket op (whether that lands on the client's
  // send/recv or the server's — both must surface the same way).
  net_fault::Arm(2, net_fault::Mode::kTorn);
  CallOptions brief;
  brief.timeout_ms = 5'000;
  auto torn = client.Query(acme.id, *token, CountQuery(2, 0, 5), brief);
  EXPECT_TRUE(torn.status().IsUnavailable()) << torn.status().ToString();
  EXPECT_TRUE(net_fault::Triggered());
  EXPECT_FALSE(client.connected());  // Fail-closed: state unknowable.
  net_fault::Disarm();

  ASSERT_TRUE(client.Reconnect().ok());
  auto again = client.OpenSession(acme.id, "alice", Slice(AliceProof(acme)));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(client.Query(acme.id, *again, CountQuery(2, 0, 5)).ok());
}

TEST(NetFaultTest, StalledWireTimesOutInsteadOfHanging) {
  ServerHarness harness;
  TenantFixture acme = MakeTenant("acme", 0x43);
  Provision(harness.registry.get(), acme);
  ConcealerClient client = harness.Dial();
  auto token = client.OpenSession(acme.id, "alice", Slice(AliceProof(acme)));
  ASSERT_TRUE(token.ok());

  net_fault::Arm(2, net_fault::Mode::kStall);
  CallOptions brief;
  brief.timeout_ms = 300;
  auto stalled = client.Query(acme.id, *token, CountQuery(3, 0, 5), brief);
  EXPECT_TRUE(stalled.status().IsUnavailable()) << stalled.status().ToString();
  net_fault::Disarm();

  ASSERT_TRUE(client.Reconnect().ok());
  auto again = client.OpenSession(acme.id, "alice", Slice(AliceProof(acme)));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(client.Query(acme.id, *again, CountQuery(3, 0, 5)).ok());
}

// --- Crash sweep over the wire --------------------------------------------

/// The mixed workload the sweep kills: static-tenant reads plus
/// dynamic-tenant queries (whose §6 rewrites hit the WAL). Every one is
/// answer-preserving, so a crash at ANY point leaves the same static
/// probe answers recoverable.
Status RunWireWorkload(ConcealerClient* client, const std::string& static_id,
                       const std::string& static_token,
                       const std::string& dynamic_id,
                       const std::string& dynamic_token) {
  for (int i = 0; i < 3; ++i) {
    CallOptions brief;
    brief.timeout_ms = 5'000;  // Stall-free shim; bound the failure modes.
    auto r1 = client->Query(static_id, static_token,
                            CountQuery(i % 4, 0, 6 + i), brief);
    if (!r1.ok()) return r1.status();
    auto r2 = client->Query(dynamic_id, dynamic_token,
                            CountQuery((i + 1) % 4, i, i + 5), brief);
    if (!r2.ok()) return r2.status();
  }
  return Status::OK();
}

TEST(NetCrashSweepTest, KillAtEveryWireIoPointRecoversByteIdentically) {
  TenantFixture statics = MakeTenant("statics", 0x51);
  TenantFixture dynamics = MakeTenant("dynamics", 0x52);

  TenantRegistryOptions base_options;
  base_options.storage.engine = StorageOptions::Engine::kMmap;
  base_options.pool_threads = 2;

  struct RunState {
    std::unique_ptr<TenantRegistry> registry;
    std::unique_ptr<ConcealerServer> server;
    ConcealerClient client;
    std::string static_token, dynamic_token;

    void SetDynamic(bool on) {
      auto svc = registry->tenant("dynamics");
      ASSERT_TRUE(svc.ok());
      (*svc)->set_dynamic_mode(on);
    }
    /// Static-mode probes, serialized — the byte-identity currency.
    std::vector<Bytes> Probes(const std::string& tenant_id,
                              const std::string& token) {
      SetDynamic(false);
      std::vector<Bytes> out;
      RetryOptions retry;
      retry.max_attempts = 20;
      retry.initial_backoff_ms = 2;
      for (uint64_t key = 0; key < 4; ++key) {
        auto result =
            client.RetryQuery(tenant_id, token, CountQuery(key, 0, 12), retry);
        EXPECT_TRUE(result.ok()) << result.status().ToString();
        if (!result.ok()) return {};
        out.push_back(SerializeQueryResult(*result));
      }
      return out;
    }
  };

  auto start = [&](const std::string& root, bool fresh) -> RunState {
    RunState run;
    TenantRegistryOptions options = base_options;
    options.root_dir = root;
    run.registry = std::make_unique<TenantRegistry>(options);
    if (fresh) {
      Provision(run.registry.get(), statics);
      Provision(run.registry.get(), dynamics);
    } else {
      EXPECT_TRUE(
          run.registry
              ->OpenAll([&](const std::string& id)
                            -> StatusOr<TenantRegistry::TenantCredentials> {
                const TenantFixture& t = id == "statics" ? statics : dynamics;
                return TenantRegistry::TenantCredentials{
                    t.config, t.dp->shared_secret()};
              })
              .ok());
      EXPECT_TRUE(run.registry
                      ->LoadRegistry("statics",
                                     Slice(statics.dp->EncryptedRegistry()))
                      .ok());
      EXPECT_TRUE(run.registry
                      ->LoadRegistry("dynamics",
                                     Slice(dynamics.dp->EncryptedRegistry()))
                      .ok());
    }
    run.SetDynamic(true);
    run.server = std::make_unique<ConcealerServer>(run.registry.get());
    EXPECT_TRUE(run.server->Start().ok());
    EXPECT_TRUE(run.client.Connect("127.0.0.1", run.server->port()).ok());
    auto st =
        run.client.OpenSession("statics", "alice", Slice(AliceProof(statics)));
    auto dt = run.client.OpenSession("dynamics", "alice",
                                     Slice(AliceProof(dynamics)));
    EXPECT_TRUE(st.ok() && dt.ok());
    if (st.ok()) run.static_token = *st;
    if (dt.ok()) run.dynamic_token = *dt;
    return run;
  };

  // Reference run: count the workload's wire ops and capture the answers
  // every sweep iteration must reproduce.
  uint64_t num_ops = 0;
  std::vector<Bytes> want_static, want_dynamic;
  {
    const std::string root = TempDir();
    {
      RunState run = start(root, /*fresh=*/true);
      net_fault::Arm(0);  // Count mode.
      ASSERT_TRUE(RunWireWorkload(&run.client, "statics", run.static_token,
                                  "dynamics", run.dynamic_token)
                      .ok());
      num_ops = net_fault::OpsIssued();
      net_fault::Disarm();
      want_static = run.Probes("statics", run.static_token);
      want_dynamic = run.Probes("dynamics", run.dynamic_token);
      run.server->Abort();
    }
    RemoveDirRecursive(root);
  }
  ASSERT_FALSE(want_static.empty());
  ASSERT_FALSE(want_dynamic.empty());
  ASSERT_GE(num_ops, 10u) << "workload too small to sweep";
  ASSERT_LE(num_ops, 400u) << "workload too large to sweep";

  for (uint64_t k = 1; k <= num_ops; ++k) {
    SCOPED_TRACE("wire crash at op " + std::to_string(k) + " of " +
                 std::to_string(num_ops));
    const std::string root = TempDir();
    {
      RunState run = start(root, /*fresh=*/true);
      // Tear on even k, clean reset on odd — both shapes of a dying peer.
      net_fault::Arm(k, (k % 2) == 0 ? net_fault::Mode::kTorn
                                     : net_fault::Mode::kClean);
      Status workload =
          RunWireWorkload(&run.client, "statics", run.static_token,
                          "dynamics", run.dynamic_token);
      // The op count is timing-sensitive (EAGAIN re-reads), so op k may
      // not recur in this run; an untriggered sweep point degenerates to
      // a clean kill, which is still a valid crash to survive.
      if (net_fault::Triggered()) {
        EXPECT_FALSE(workload.ok()) << "op " << k << " failure swallowed";
      }
      // Crash: the dying process issues no further durable I/O either.
      fault_fs::Arm(1);
      run.server->Abort();
      run.server.reset();
      run.registry.reset();
      fault_fs::Disarm();
      net_fault::Disarm();
    }

    // Restart on the directory the crash left behind; a retrying client
    // must read byte-identical static answers for both tenants.
    {
      RunState run = start(root, /*fresh=*/false);
      EXPECT_EQ(run.Probes("statics", run.static_token), want_static);
      EXPECT_EQ(run.Probes("dynamics", run.dynamic_token), want_dynamic);
      // And the recovered tenants stay fully live in dynamic mode.
      run.SetDynamic(true);
      auto again =
          run.client.Query("dynamics", run.dynamic_token, CountQuery(1, 2, 9));
      EXPECT_TRUE(again.ok()) << again.status().ToString();
      ASSERT_TRUE(run.server->Drain().ok());
    }
    RemoveDirRecursive(root);
  }
}

}  // namespace
}  // namespace concealer
