// Storage persistence tests: epoch_io framing negative paths (the checks
// that also guard every segment record), epoch-meta sidecars, and the
// end-to-end restart contract — ingest with the mmap engine, destroy the
// provider, re-open the segment directory and get answers byte-identical
// to an in-memory provider that never restarted. Plus the service-level
// epoch lifecycle: hot/cold tiering with reload-on-demand.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "concealer/data_provider.h"
#include "concealer/epoch_io.h"
#include "concealer/service_provider.h"
#include "concealer/wire.h"
#include "enclave/registry.h"
#include "service/query_service.h"
#include "storage/segment_engine.h"
#include "workload/wifi_generator.h"

namespace concealer {
namespace {

std::string TempDir() {
  char tmpl[] = "/tmp/concealer-persist-test-XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

void RemoveDirRecursive(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
}

ConcealerConfig TestConfig() {
  ConcealerConfig config;
  config.key_buckets = {8};
  config.key_domains = {20};
  config.time_buckets = 24;
  config.num_cell_ids = 40;
  config.epoch_seconds = 86400;
  config.time_quantum = 60;
  config.make_hash_chains = true;
  return config;
}

std::vector<PlainTuple> TestTuples(uint64_t days) {
  WifiConfig wifi;
  wifi.num_access_points = 20;
  wifi.num_devices = 50;
  wifi.start_time = 0;
  wifi.duration_seconds = days * 86400;
  wifi.total_rows = 1500 * days;
  wifi.seed = 7;
  return WifiGenerator(wifi).Generate();
}

EncryptedEpoch TestEpoch() {
  const ConcealerConfig config = TestConfig();
  DataProvider dp(config, Bytes(32, 0x51));
  auto epochs = dp.EncryptAll(TestTuples(1));
  EXPECT_TRUE(epochs.ok());
  EXPECT_EQ(epochs->size(), 1u);
  return std::move((*epochs)[0]);
}

// --- epoch_io negative paths ----------------------------------------------
// These same framing checks guard the segment files, the epoch metas and
// the index sidecar; each must fail cleanly, never crash.

class EpochIoNegativeTest : public ::testing::Test {
 protected:
  void SetUp() override { blob_ = SerializeEpoch(TestEpoch()); }
  Bytes blob_;
};

TEST_F(EpochIoNegativeTest, RoundTripsWhenUntouched) {
  auto epoch = DeserializeEpoch(blob_);
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(SerializeEpoch(*epoch), blob_);
}

TEST_F(EpochIoNegativeTest, TooShort) {
  for (size_t len : {size_t{0}, size_t{3}, size_t{23}}) {
    Bytes short_blob(blob_.begin(), blob_.begin() + len);
    auto st = DeserializeEpoch(short_blob).status();
    EXPECT_TRUE(st.IsCorruption()) << len << ": " << st.ToString();
  }
}

TEST_F(EpochIoNegativeTest, BadMagic) {
  Bytes bad = blob_;
  bad[0] ^= 0xff;
  EXPECT_TRUE(DeserializeEpoch(bad).status().IsCorruption());
  // All-zero magic (a clean segment tail) is still corruption for a
  // standalone epoch blob.
  bad = blob_;
  bad[0] = bad[1] = bad[2] = bad[3] = 0;
  EXPECT_TRUE(DeserializeEpoch(bad).status().IsCorruption());
}

TEST_F(EpochIoNegativeTest, UnsupportedVersion) {
  Bytes bad = blob_;
  bad[4] = 99;
  auto st = DeserializeEpoch(bad).status();
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST_F(EpochIoNegativeTest, CorruptedChecksum) {
  // Flip one body byte: the FNV integrity word must catch it.
  Bytes bad = blob_;
  bad[bad.size() / 2] ^= 0x01;
  auto st = DeserializeEpoch(bad).status();
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  // Flip a checksum byte itself.
  bad = blob_;
  bad[9] ^= 0x01;
  EXPECT_TRUE(DeserializeEpoch(bad).status().IsCorruption());
}

TEST_F(EpochIoNegativeTest, TruncatedBody) {
  for (size_t cut : {size_t{1}, size_t{7}, blob_.size() / 2}) {
    Bytes bad(blob_.begin(), blob_.end() - cut);
    auto st = DeserializeEpoch(bad).status();
    EXPECT_TRUE(st.IsCorruption()) << cut << ": " << st.ToString();
  }
}

TEST_F(EpochIoNegativeTest, TrailingBytes) {
  Bytes bad = blob_;
  bad.push_back(0x42);
  EXPECT_TRUE(DeserializeEpoch(bad).status().IsCorruption());
}

TEST_F(EpochIoNegativeTest, ReadEpochFileMissing) {
  auto st = ReadEpochFile("/nonexistent/epoch.bin").status();
  EXPECT_TRUE(st.IsNotFound());
}

TEST(EpochMetaTest, RoundTrip) {
  EpochMeta meta;
  meta.epoch = TestEpoch();
  meta.first_row_id = 1234;
  meta.num_rows = meta.epoch.rows.size();
  meta.seg_lo = 3;
  meta.seg_hi = 5;
  const Bytes blob = SerializeEpochMeta(meta);
  auto back = DeserializeEpochMeta(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->first_row_id, 1234u);
  EXPECT_EQ(back->num_rows, meta.num_rows);
  EXPECT_EQ(back->seg_lo, 3u);
  EXPECT_EQ(back->seg_hi, 5u);
  EXPECT_TRUE(back->epoch.rows.empty());  // Rows are stripped by design.
  EXPECT_EQ(back->epoch.epoch_id, meta.epoch.epoch_id);
  EXPECT_EQ(back->epoch.enc_grid_layout, meta.epoch.enc_grid_layout);
  EXPECT_EQ(back->epoch.enc_verification_tags,
            meta.epoch.enc_verification_tags);

  Bytes bad = blob;
  bad[bad.size() / 2] ^= 1;
  EXPECT_FALSE(DeserializeEpochMeta(bad).ok());
}

// --- End-to-end restart equivalence ---------------------------------------

std::vector<Query> EquivalenceQueries() {
  std::vector<Query> queries;
  for (uint64_t loc : {2, 7, 13}) {
    Query q;
    q.agg = Aggregate::kCount;
    q.key_values = {{loc}};
    q.time_lo = 8 * 3600;
    q.time_hi = 8 * 3600 + 40 * 60;
    queries.push_back(q);
    q.time_lo = 86400 + 3 * 3600;  // Second epoch.
    q.time_hi = 86400 + 5 * 3600;
    q.verify = true;
    queries.push_back(q);
    q.method = RangeMethod::kWinSecRange;
    queries.push_back(q);
  }
  Query top;
  top.agg = Aggregate::kTopK;
  top.k = 3;
  top.time_lo = 0;
  top.time_hi = 3 * 86400;  // All epochs.
  queries.push_back(top);
  return queries;
}

TEST(PersistenceEndToEndTest, RestartAnswersByteIdentical) {
  const std::string dir = TempDir();
  const ConcealerConfig config = TestConfig();
  const auto tuples = TestTuples(3);
  DataProvider dp(config, Bytes(32, 0x52));
  auto epochs = dp.EncryptAll(tuples);
  ASSERT_TRUE(epochs.ok());
  ASSERT_EQ(epochs->size(), 3u);

  // Reference: an in-memory provider that never restarts.
  StorageOptions mem_options;  // kMemory, env-independent.
  ServiceProvider memory_sp(config, dp.shared_secret(), mem_options);
  for (const auto& e : *epochs) {
    ASSERT_TRUE(memory_sp.IngestEpoch(e).ok());
  }

  const std::vector<Query> queries = EquivalenceQueries();
  std::vector<Bytes> want;
  for (const Query& q : queries) {
    auto result = memory_sp.Execute(q);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    want.push_back(SerializeQueryResult(*result));
  }

  StorageOptions mmap_options;
  mmap_options.engine = StorageOptions::Engine::kMmap;
  mmap_options.dir = dir;

  uint64_t mmap_bytes_fetched = 0;
  {
    // First life: ingest + query with the mmap engine.
    auto sp = ServiceProvider::Open(config, dp.shared_secret(), mmap_options);
    ASSERT_TRUE(sp.ok()) << sp.status().ToString();
    for (const auto& e : *epochs) {
      ASSERT_TRUE((*sp)->IngestEpoch(e).ok());
    }
    EXPECT_EQ((*sp)->table().TotalBytes(), memory_sp.table().TotalBytes());
    (*sp)->mutable_table().ResetStats();
    memory_sp.mutable_table().ResetStats();
    for (size_t i = 0; i < queries.size(); ++i) {
      auto result = (*sp)->Execute(queries[i]);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(SerializeQueryResult(*result), want[i]) << "query " << i;
      auto check = memory_sp.Execute(queries[i]);
      ASSERT_TRUE(check.ok());
    }
    // Zero-copy accounting: both engines fetched exactly the same
    // ciphertext bytes through the borrow path — FetchRefs copies no row
    // on either backend (the mmap borrows are asserted to point into the
    // mapped region in storage_test).
    const TableStats mmap_stats = (*sp)->table().stats();
    const TableStats mem_stats = memory_sp.table().stats();
    EXPECT_GT(mmap_stats.bytes_fetched, 0u);
    EXPECT_EQ(mmap_stats.bytes_fetched, mem_stats.bytes_fetched);
    EXPECT_EQ(mmap_stats.rows_fetched, mem_stats.rows_fetched);
    EXPECT_EQ(mmap_stats.index_probes, mem_stats.index_probes);
    mmap_bytes_fetched = mmap_stats.bytes_fetched;
  }  // Provider destroyed: maps unmapped, segments sealed.

  {
    // Second life: re-open from the segment directory alone — no epochs
    // are re-shipped — and answer every query byte-identically.
    auto sp = ServiceProvider::Open(config, dp.shared_secret(), mmap_options);
    ASSERT_TRUE(sp.ok()) << sp.status().ToString();
    EXPECT_EQ((*sp)->num_epochs(), 3u);
    EXPECT_EQ((*sp)->table().num_rows(), memory_sp.table().num_rows());
    EXPECT_EQ((*sp)->table().TotalBytes(), memory_sp.table().TotalBytes());
    for (size_t i = 0; i < queries.size(); ++i) {
      auto result = (*sp)->Execute(queries[i]);
      ASSERT_TRUE(result.ok()) << "query " << i << ": "
                               << result.status().ToString();
      EXPECT_EQ(SerializeQueryResult(*result), want[i]) << "query " << i;
    }
    EXPECT_EQ((*sp)->table().stats().bytes_fetched, mmap_bytes_fetched);

    // Restart-of-restart: ingest another epoch into the reopened provider
    // and keep querying (the recovered provider is fully live).
    EXPECT_TRUE((*sp)->EpochRowsResident(0));
  }
  RemoveDirRecursive(dir);
}

TEST(PersistenceEndToEndTest, RecoveryRebuildsIndexWithoutSidecar) {
  const std::string dir = TempDir();
  const ConcealerConfig config = TestConfig();
  const auto tuples = TestTuples(1);
  DataProvider dp(config, Bytes(32, 0x53));
  auto epochs = dp.EncryptAll(tuples);
  ASSERT_TRUE(epochs.ok());

  StorageOptions options;
  options.engine = StorageOptions::Engine::kMmap;
  options.dir = dir;
  Bytes want;
  Query q;
  q.agg = Aggregate::kCount;
  q.key_values = {{4}};
  q.time_lo = 6 * 3600;
  q.time_hi = 7 * 3600;
  {
    auto sp = ServiceProvider::Open(config, dp.shared_secret(), options);
    ASSERT_TRUE(sp.ok());
    for (const auto& e : *epochs) ASSERT_TRUE((*sp)->IngestEpoch(e).ok());
    auto result = (*sp)->Execute(q);
    ASSERT_TRUE(result.ok());
    want = SerializeQueryResult(*result);
  }
  // Delete the sidecar: recovery must fall back to rebuilding the B+-tree
  // from the segment rows and still answer identically.
  ASSERT_EQ(::unlink((dir + "/index.sidecar").c_str()), 0);
  {
    auto sp = ServiceProvider::Open(config, dp.shared_secret(), options);
    ASSERT_TRUE(sp.ok()) << sp.status().ToString();
    auto result = (*sp)->Execute(q);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(SerializeQueryResult(*result), want);
  }
  RemoveDirRecursive(dir);
}

TEST(PersistenceEndToEndTest, IngestAfterDynamicModeKeepsSegmentAlignment) {
  // Regression: a §6 dynamic query's re-encryption Replace opens a fresh
  // active segment. A subsequent ingest must seal it first, or the new
  // epoch's recorded segment range would miss its own rows and every
  // query on it would fail the residency guard.
  const std::string dir = TempDir();
  const ConcealerConfig config = TestConfig();
  const auto tuples = TestTuples(2);
  DataProvider dp(config, Bytes(32, 0x55));
  auto epochs = dp.EncryptAll(tuples);
  ASSERT_TRUE(epochs.ok());
  ASSERT_EQ(epochs->size(), 2u);

  StorageOptions options;
  options.engine = StorageOptions::Engine::kMmap;
  options.dir = dir;
  auto sp = ServiceProvider::Open(config, dp.shared_secret(), options);
  ASSERT_TRUE(sp.ok());
  ASSERT_TRUE((*sp)->IngestEpoch((*epochs)[0]).ok());

  // Dynamic query on epoch 0: fetch-and-rewrite appends re-encrypted rows
  // into a new (unsealed) active segment.
  (*sp)->set_dynamic_mode(true);
  Query dyn;
  dyn.agg = Aggregate::kCount;
  dyn.key_values = {{5}};
  dyn.time_lo = 10 * 3600;
  dyn.time_hi = 10 * 3600;
  ASSERT_TRUE((*sp)->Execute(dyn).ok());
  (*sp)->set_dynamic_mode(false);

  // Ingest epoch 1 and query it: with a misaligned segment range this
  // returned FailedPrecondition("rows are evicted") forever.
  ASSERT_TRUE((*sp)->IngestEpoch((*epochs)[1]).ok());
  Query q;
  q.agg = Aggregate::kCount;
  q.key_values = {{5}};
  q.time_lo = 86400 + 9 * 3600;
  q.time_hi = 86400 + 12 * 3600;
  auto result = (*sp)->Execute(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE((*sp)->EpochRowsResident(1));
  // And the epoch's rows really evict/reload through its recorded range.
  ASSERT_TRUE((*sp)->EvictEpochRows(1).ok());
  EXPECT_FALSE((*sp)->EpochRowsResident(1));
  ASSERT_TRUE((*sp)->LoadEpochRows(1).ok());
  auto again = (*sp)->Execute(q);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->count, result->count);
  (*sp).reset();
  RemoveDirRecursive(dir);
}

TEST(PersistenceEndToEndTest, CrashSlackSegmentStillEvictsAndReloads) {
  // Regression: a crash leaves the active segment preallocated (zero tail
  // on disk). Recovery must normalize it so a later evict/reload cycle
  // round-trips instead of rejecting the segment as resized.
  const std::string dir = TempDir();
  const ConcealerConfig config = TestConfig();
  const auto tuples = TestTuples(1);
  DataProvider dp(config, Bytes(32, 0x56));
  auto epochs = dp.EncryptAll(tuples);
  ASSERT_TRUE(epochs.ok());

  StorageOptions options;
  options.engine = StorageOptions::Engine::kMmap;
  options.dir = dir;
  {
    auto sp = ServiceProvider::Open(config, dp.shared_secret(), options);
    ASSERT_TRUE(sp.ok());
    ASSERT_TRUE((*sp)->IngestEpoch((*epochs)[0]).ok());
  }
  // Simulate the crash by re-inflating the sealed file with a zero tail
  // (exactly what an unsealed preallocated segment looks like on disk).
  const std::string seg0 = dir + "/seg-000000.seg";
  std::FILE* f = std::fopen(seg0.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const std::vector<char> zeros(1 << 20, 0);
  ASSERT_EQ(std::fwrite(zeros.data(), 1, zeros.size(), f), zeros.size());
  std::fclose(f);
  {
    auto sp = ServiceProvider::Open(config, dp.shared_secret(), options);
    ASSERT_TRUE(sp.ok()) << sp.status().ToString();
    ASSERT_TRUE((*sp)->EvictEpochRows(0).ok());
    EXPECT_FALSE((*sp)->EpochRowsResident(0));
    ASSERT_TRUE((*sp)->LoadEpochRows(0).ok()) << "reload after crash slack";
    Query q;
    q.agg = Aggregate::kCount;
    q.key_values = {{4}};
    q.time_lo = 6 * 3600;
    q.time_hi = 8 * 3600;
    auto result = (*sp)->Execute(q);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  RemoveDirRecursive(dir);
}

// --- Service-level epoch lifecycle ----------------------------------------

TEST(EpochLifecycleTest, ColdEpochsEvictAndReloadOnDemand) {
  const std::string dir = TempDir();
  const ConcealerConfig config = TestConfig();
  const auto tuples = TestTuples(3);
  DataProvider dp(config, Bytes(32, 0x54));
  ASSERT_TRUE(dp.RegisterUser("alice", Slice("alice-secret", 12), "").ok());
  auto epochs = dp.EncryptAll(tuples);
  ASSERT_TRUE(epochs.ok());
  ASSERT_EQ(epochs->size(), 3u);

  // Reference answers from a plain in-memory service.
  auto memory_sp = std::make_unique<ServiceProvider>(config,
                                                     dp.shared_secret(),
                                                     StorageOptions{});
  for (const auto& e : *epochs) ASSERT_TRUE(memory_sp->IngestEpoch(e).ok());

  StorageOptions options;
  options.engine = StorageOptions::Engine::kMmap;
  options.dir = dir;
  auto sp = ServiceProvider::Open(config, dp.shared_secret(), options);
  ASSERT_TRUE(sp.ok());

  QueryServiceOptions service_options;
  service_options.max_hot_epochs = 1;  // Aggressive tiering.
  // Heap-held so the restart below can destroy it first — two live engines
  // over one segment directory is not a supported configuration.
  auto service = std::make_unique<QueryService>(std::move(*sp),
                                                service_options);
  ASSERT_TRUE(service->LoadRegistry(dp.EncryptedRegistry()).ok());
  for (const auto& e : *epochs) ASSERT_TRUE(service->IngestEpoch(e).ok());

  ASSERT_NE(service->lifecycle(), nullptr);
  // Three epochs through a 1-epoch hot set: two are already cold.
  EXPECT_EQ(service->lifecycle()->stats().resident_epochs, 1u);
  EXPECT_GE(service->lifecycle()->stats().evictions, 2u);

  auto token = service->OpenSession(
      "alice", Registry::MakeProof(Slice("alice-secret", 12), "alice"));
  ASSERT_TRUE(token.ok());

  // Ping-pong across epochs: every switch reloads a cold epoch, answers
  // stay identical to the never-evicting in-memory provider.
  for (int round = 0; round < 2; ++round) {
    for (uint64_t day = 0; day < 3; ++day) {
      Query q;
      q.agg = Aggregate::kCount;
      q.key_values = {{3}};
      q.time_lo = day * 86400 + 9 * 3600;
      q.time_hi = day * 86400 + 11 * 3600;
      q.verify = true;
      auto got = service->Execute(*token, q);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      auto want = memory_sp->Execute(q);
      ASSERT_TRUE(want.ok());
      EXPECT_EQ(SerializeQueryResult(*got), SerializeQueryResult(*want))
          << "day " << day << " round " << round;
    }
  }
  const EpochLifecycleManager::Stats stats = service->lifecycle()->stats();
  EXPECT_GE(stats.loads, 4u);  // Cold reloads actually happened.
  EXPECT_EQ(stats.resident_epochs, 1u);

  // A whole-range query must pull every epoch in (hot cap never blocks a
  // query's own epochs) and still answer correctly.
  Query all;
  all.agg = Aggregate::kCount;
  all.key_values = {{3}};
  all.time_lo = 0;
  all.time_hi = 3 * 86400;
  auto got = service->Execute(*token, all);
  ASSERT_TRUE(got.ok());
  auto want = memory_sp->Execute(all);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(got->count, want->count);

  // A real restart: tear the first service down (sealing its engine)
  // before any second engine opens the directory.
  service.reset();

  // Restart: the reopened provider re-admits its recovered epochs through
  // the lifecycle manager at construction. The hot cap must hold after the
  // restart, and no admission may have failed silently — recovery_status()
  // reports the first failure.
  {
    auto sp2 = ServiceProvider::Open(config, dp.shared_secret(), options);
    ASSERT_TRUE(sp2.ok()) << sp2.status().ToString();
    QueryService reopened(std::move(*sp2), service_options);
    ASSERT_TRUE(reopened.recovery_status().ok())
        << reopened.recovery_status().ToString();
    ASSERT_NE(reopened.lifecycle(), nullptr);
    EXPECT_EQ(reopened.lifecycle()->stats().resident_epochs, 1u);
    ASSERT_TRUE(reopened.LoadRegistry(dp.EncryptedRegistry()).ok());
    auto token2 = reopened.OpenSession(
        "alice", Registry::MakeProof(Slice("alice-secret", 12), "alice"));
    ASSERT_TRUE(token2.ok());
    auto got2 = reopened.Execute(*token2, all);
    ASSERT_TRUE(got2.ok()) << got2.status().ToString();
    EXPECT_EQ(got2->count, want->count);
  }

  RemoveDirRecursive(dir);
}

}  // namespace
}  // namespace concealer
