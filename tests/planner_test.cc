// White-box tests for the enclave-side planning layer: EpochState plan
// caching, RangePlanner fetch-unit construction for all three methods, and
// QueryExecutor trapdoor properties (plain vs oblivious equivalence,
// constant per-bin volumes, fake-range behaviour).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "concealer/data_provider.h"
#include "concealer/epoch_state.h"
#include "concealer/query_executor.h"
#include "concealer/range_planner.h"
#include "concealer/service_provider.h"
#include "workload/wifi_generator.h"

namespace concealer {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.key_buckets = {8};
    config_.key_domains = {20};
    config_.time_buckets = 24;
    config_.num_cell_ids = 40;
    config_.epoch_seconds = 86400;
    config_.time_quantum = 60;

    WifiConfig wifi;
    wifi.num_access_points = 20;
    wifi.num_devices = 50;
    wifi.start_time = 0;
    wifi.duration_seconds = 86400;
    wifi.total_rows = 2500;
    wifi.seed = 31;
    tuples_ = WifiGenerator(wifi).Generate();

    dp_ = std::make_unique<DataProvider>(config_, Bytes(32, 0x77));
    sp_ = std::make_unique<ServiceProvider>(config_, dp_->shared_secret());
    auto epochs = dp_->EncryptAll(tuples_);
    ASSERT_TRUE(epochs.ok());
    ASSERT_TRUE(sp_->IngestEpoch((*epochs)[0]).ok());
    auto state = sp_->epoch_state(0);
    ASSERT_TRUE(state.ok());
    state_ = *state;
    planner_ = std::make_unique<RangePlanner>(config_);
  }

  Query PointQuery(uint64_t loc, uint64_t t) {
    Query q;
    q.agg = Aggregate::kCount;
    q.key_values = {{loc}};
    q.time_lo = q.time_hi = t;
    return q;
  }

  ConcealerConfig config_;
  std::vector<PlainTuple> tuples_;
  std::unique_ptr<DataProvider> dp_;
  std::unique_ptr<ServiceProvider> sp_;
  EpochState* state_ = nullptr;
  std::unique_ptr<RangePlanner> planner_;
};

TEST_F(PlannerTest, BinPlanIsCachedAndStable) {
  auto p1 = state_->GetBinPlan(PackAlgorithm::kFirstFitDecreasing);
  auto p2 = state_->GetBinPlan(PackAlgorithm::kFirstFitDecreasing);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(*p1, *p2);  // Same cached object.
  EXPECT_GT((*p1)->bins.size(), 1u);
}

TEST_F(PlannerTest, PointQueryPlansExactlyOneBin) {
  for (uint64_t loc : {0ull, 7ull, 19ull}) {
    auto bins = planner_->BpbBinIndexes(state_, PointQuery(loc, 7 * 3600));
    ASSERT_TRUE(bins.ok());
    EXPECT_EQ(bins->size(), 1u);
  }
}

TEST_F(PlannerTest, BpbUnitsAreWholeBinsWithPlanWideSlots) {
  Query q = PointQuery(4, 10 * 3600);
  q.method = RangeMethod::kBPB;
  auto units = planner_->Plan(state_, q);
  ASSERT_TRUE(units.ok());
  ASSERT_EQ(units->size(), 1u);
  auto plan = state_->GetBinPlan(PackAlgorithm::kFirstFitDecreasing);
  ASSERT_TRUE(plan.ok());

  const FetchUnit& unit = (*units)[0];
  // Unit volume (real + fake) is exactly the plan's bin size.
  uint32_t real = 0;
  for (uint32_t cid : unit.cell_ids) {
    real += state_->layout().count_per_cell_id[cid];
  }
  EXPECT_EQ(real + unit.fake_count, (*plan)->bin_size);
  EXPECT_FALSE(unit.cycle_fakes);  // BPB fakes are disjoint (Example 4.1).
  // Slot shape is plan-wide, not unit-local.
  uint32_t max_cids = 0, max_fakes = 0;
  for (const Bin& b : (*plan)->bins) {
    max_cids = std::max<uint32_t>(max_cids, b.cell_ids.size());
    max_fakes = std::max(max_fakes, b.fake_count);
  }
  EXPECT_EQ(unit.slots_cids, std::max(1u, max_cids));
  EXPECT_EQ(unit.slots_fakes, std::max(1u, max_fakes));
}

TEST_F(PlannerTest, EbpbUnitsPadToWindowVolume) {
  Query q;
  q.agg = Aggregate::kCount;
  q.key_values = {{3}};
  q.time_lo = 6 * 3600;
  q.time_hi = 8 * 3600 - 1;  // Two buckets.
  q.method = RangeMethod::kEBPB;
  auto units = planner_->Plan(state_, q);
  ASSERT_TRUE(units.ok());
  ASSERT_EQ(units->size(), 1u);  // One key column.
  auto bsize = state_->GetEbpbBinSize(2);
  ASSERT_TRUE(bsize.ok());
  uint32_t real = 0;
  for (uint32_t cid : (*units)[0].cell_ids) {
    real += state_->layout().count_per_cell_id[cid];
  }
  EXPECT_EQ(real + (*units)[0].fake_count, *bsize);
  EXPECT_TRUE((*units)[0].cycle_fakes);
}

TEST_F(PlannerTest, EbpbBinSizeMonotonicInWindow) {
  uint32_t prev = 0;
  for (uint32_t window = 1; window <= 6; ++window) {
    auto bsize = state_->GetEbpbBinSize(window);
    ASSERT_TRUE(bsize.ok());
    EXPECT_GE(*bsize, prev) << "window " << window;
    prev = *bsize;
  }
  EXPECT_FALSE(state_->GetEbpbBinSize(0).ok());
}

TEST_F(PlannerTest, WinSecUnitsAreAlignedIntervals) {
  ConcealerConfig config = config_;
  config.winsec_lambda_buckets = 4;
  RangePlanner planner(config);
  Query q;
  q.agg = Aggregate::kCount;
  q.key_values = {{1}};
  q.time_lo = 5 * 3600;   // Bucket 5 -> interval 1 (buckets 4-7).
  q.time_hi = 9 * 3600;   // Bucket 9 -> interval 2 (buckets 8-11).
  q.method = RangeMethod::kWinSecRange;
  auto units = planner.Plan(state_, q);
  ASSERT_TRUE(units.ok());
  EXPECT_EQ(units->size(), 2u);
  auto plan = state_->GetIntervalPlan(4);
  ASSERT_TRUE(plan.ok());
  // Every unit's volume equals the shared interval bin size.
  for (const FetchUnit& unit : *units) {
    uint32_t real = 0;
    for (uint32_t cid : unit.cell_ids) {
      real += state_->layout().count_per_cell_id[cid];
    }
    EXPECT_EQ(real + unit.fake_count, (*plan)->bin_size);
  }
}

TEST_F(PlannerTest, WinSecRejectedWithoutTimeAxis) {
  ConcealerConfig config = config_;
  config.time_buckets = 0;
  RangePlanner planner(config);
  Query q;
  q.method = RangeMethod::kWinSecRange;
  q.key_values = {{1}};
  EXPECT_FALSE(planner.Plan(state_, q).ok());
}

TEST_F(PlannerTest, QueryOutsideEpochPlansNothing) {
  Query q = PointQuery(1, 0);
  q.time_lo = q.time_hi = 10 * 86400;  // Far outside epoch 0.
  for (RangeMethod m :
       {RangeMethod::kBPB, RangeMethod::kEBPB, RangeMethod::kWinSecRange}) {
    q.method = m;
    auto units = planner_->Plan(state_, q);
    ASSERT_TRUE(units.ok());
    EXPECT_TRUE(units->empty());
  }
}

TEST_F(PlannerTest, TrapdoorCountEqualsBinSizeForEveryBin) {
  QueryExecutor executor(&sp_->enclave(), &sp_->table(), config_);
  auto plan = state_->GetBinPlan(PackAlgorithm::kFirstFitDecreasing);
  ASSERT_TRUE(plan.ok());
  for (uint32_t b = 0; b < (*plan)->bins.size(); ++b) {
    auto unit = planner_->UnitForBin(state_, b);
    ASSERT_TRUE(unit.ok());
    auto fetched = executor.Fetch(*state_, *unit, /*oblivious=*/false);
    ASSERT_TRUE(fetched.ok());
    EXPECT_EQ(fetched->trapdoors_issued, (*plan)->bin_size) << "bin " << b;
    EXPECT_EQ(fetched->rows.size(), (*plan)->bin_size) << "bin " << b;
  }
}

TEST_F(PlannerTest, ObliviousTrapdoorsFetchSameRowsAsPlain) {
  QueryExecutor executor(&sp_->enclave(), &sp_->table(), config_);
  auto unit = planner_->UnitForBin(state_, 0);
  ASSERT_TRUE(unit.ok());
  auto plain = executor.Fetch(*state_, *unit, /*oblivious=*/false);
  auto oblivious = executor.Fetch(*state_, *unit, /*oblivious=*/true);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(oblivious.ok());
  EXPECT_EQ(plain->trapdoors_issued, oblivious->trapdoors_issued);
  // Same row multiset (order may differ after the oblivious sort).
  auto index_set = [](const FetchedUnit& f) {
    std::multiset<Bytes> s;
    for (const Row* r : f.rows) s.insert(r->columns[kColIndex].ToBytes());
    return s;
  };
  EXPECT_EQ(index_set(*plain), index_set(*oblivious));
}

TEST_F(PlannerTest, FetchAlignsEveryRealRowToItsCellId) {
  QueryExecutor executor(&sp_->enclave(), &sp_->table(), config_);
  auto unit = planner_->UnitForBin(state_, 1);
  ASSERT_TRUE(unit.ok());
  auto fetched = executor.Fetch(*state_, *unit, false);
  ASSERT_TRUE(fetched.ok());
  uint64_t aligned = 0;
  for (const auto& [cid, rows] : fetched->real_row_of_cid) {
    EXPECT_EQ(rows.size(), state_->layout().count_per_cell_id[cid]);
    aligned += rows.size();
  }
  // Real rows + fakes == bin volume.
  EXPECT_EQ(aligned + unit->fake_count, fetched->rows.size());
}

TEST_F(PlannerTest, SuperBinFactorMustDivideBinCount) {
  auto plan = state_->GetBinPlan(PackAlgorithm::kFirstFitDecreasing);
  ASSERT_TRUE(plan.ok());
  const uint32_t num_bins = static_cast<uint32_t>((*plan)->bins.size());
  if (num_bins < 3) GTEST_SKIP();
  // A non-divisor factor makes the query fail loudly rather than silently
  // degrade privacy.
  uint32_t bad = 2;
  while (bad <= num_bins && num_bins % bad == 0) ++bad;
  if (bad > num_bins) GTEST_SKIP();
  sp_->set_super_bin_factor(bad);
  EXPECT_FALSE(sp_->Execute(PointQuery(2, 3600)).ok());
  sp_->set_super_bin_factor(0);
  EXPECT_TRUE(sp_->Execute(PointQuery(2, 3600)).ok());
}

}  // namespace
}  // namespace concealer
