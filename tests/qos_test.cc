// Per-tenant QoS tests: weighted deficit-round-robin scheduling on the
// shared pool (deterministic starvation/proportionality checks — a single
// pinned worker makes the dispatch order exact, no wall-time sleeps),
// admission backpressure (Unavailable + retry-after through the tenant
// registry, fault-injection hook pinning a slot, retrying client), the
// global work-cache byte budget (coldest-tenant steal, bytes <= cap after
// settle, recompute correctness), and byte-identity of the whole QoS path
// against a dedicated pre-QoS service.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "concealer/data_provider.h"
#include "concealer/wire.h"
#include "enclave/registry.h"
#include "service/admission_gate.h"
#include "service/cache_budget.h"
#include "service/retry.h"
#include "service/tenant_registry.h"
#include "workload/wifi_generator.h"

namespace concealer {
namespace {

// --- Deterministic synchronization helpers (no wall-time sleeps) ----------

class Latch {
 public:
  void Signal() {
    // Notify under the lock: the waiter may destroy this latch the moment
    // it observes done_, so the cv must not be touched after unlocking.
    std::lock_guard<std::mutex> lock(mu_);
    done_ = true;
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return done_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
};

/// Records task execution order and lets the test block until N ran.
class OrderLog {
 public:
  void Record(char c) {
    // Notify under the lock (see Latch::Signal): the waiter may destroy
    // this log as soon as it sees the final entry.
    std::lock_guard<std::mutex> lock(mu_);
    order_.push_back(c);
    cv_.notify_all();
  }
  std::string WaitFor(size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return order_.size() >= n; });
    return order_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::string order_;
};

// --- Scheduler: weighted DRR on the ThreadPool ----------------------------
//
// Recipe: a 2-thread pool has exactly one worker. A gate task pins that
// worker before anything else is submitted, so the tagged tasks pile up in
// their class queues; releasing the gate then replays them one at a time in
// exact DRR order — fully deterministic, regardless of machine speed.

TEST(QosSchedulerTest, FloodedClassCannotStarveAnother) {
  ThreadPool pool(2);
  Latch started, release;
  pool.Submit([&] {
    started.Signal();
    release.Wait();
  });
  started.Wait();  // The lone worker is pinned; submissions below queue up.

  const uint64_t flood = pool.RegisterClass(1);
  const uint64_t victim = pool.RegisterClass(1);
  OrderLog log;
  constexpr size_t kFlood = 40;
  {
    ThreadPool::TagScope tag(&pool, flood);
    for (size_t i = 0; i < kFlood; ++i) pool.Submit([&] { log.Record('F'); });
  }
  {
    ThreadPool::TagScope tag(&pool, victim);
    pool.Submit([&] { log.Record('V'); });
  }

  release.Signal();
  const std::string order = log.WaitFor(kFlood + 1);
  // FIFO would run the victim last (index 40). DRR serves it on the very
  // next round: one flood task (its weight-1 visit), then the victim.
  ASSERT_EQ(order.size(), kFlood + 1);
  EXPECT_EQ(order[1], 'V') << order;
  EXPECT_EQ(pool.class_stats(flood).dispatched, kFlood);
}

TEST(QosSchedulerTest, WeightsServeProportionally) {
  ThreadPool pool(2);
  Latch started, release;
  pool.Submit([&] {
    started.Signal();
    release.Wait();
  });
  started.Wait();

  const uint64_t heavy = pool.RegisterClass(3);
  const uint64_t light = pool.RegisterClass(1);
  OrderLog log;
  {
    ThreadPool::TagScope tag(&pool, heavy);
    for (int i = 0; i < 9; ++i) pool.Submit([&] { log.Record('H'); });
  }
  {
    ThreadPool::TagScope tag(&pool, light);
    for (int i = 0; i < 3; ++i) pool.Submit([&] { log.Record('L'); });
  }

  release.Signal();
  // 3:1 interleave, exactly: each ring round serves three heavy then one
  // light task.
  EXPECT_EQ(log.WaitFor(12), "HHHLHHHLHHHL");
  EXPECT_EQ(pool.class_stats(heavy).weight, 3u);
  EXPECT_EQ(pool.class_stats(light).weight, 1u);
}

TEST(QosSchedulerTest, UntaggedSubmissionsStayFifo) {
  ThreadPool pool(2);
  Latch started, release;
  pool.Submit([&] {
    started.Signal();
    release.Wait();
  });
  started.Wait();

  OrderLog log;
  for (char c : {'a', 'b', 'c', 'd', 'e'}) {
    pool.Submit([&log, c] { log.Record(c); });
  }
  release.Signal();
  // One active class (the default 0): DRR degenerates to plain FIFO — the
  // pre-QoS behavior single-tenant pools rely on.
  EXPECT_EQ(log.WaitFor(5), "abcde");
}

TEST(QosSchedulerTest, ParallelForHelpersInheritCallersClass) {
  ThreadPool pool(4);  // 3 workers.
  const uint64_t cls = pool.RegisterClass(2);
  std::atomic<int> ran{0};
  {
    ThreadPool::TagScope tag(&pool, cls);
    pool.ParallelFor(8, [&](size_t) { ++ran; });
  }
  EXPECT_EQ(ran.load(), 8);
  // The fan-out enqueued min(workers, n-1) = 3 helper tasks under the
  // caller's class. Completion never waits for queued helpers, so some may
  // still be pending — dispatched + queued accounts for all of them either
  // way. Nothing may land in another class's queue.
  const ThreadPool::ClassStats stats = pool.class_stats(cls);
  EXPECT_EQ(stats.dispatched + stats.queued, 3u);
  EXPECT_EQ(stats.weight, 2u);
}

TEST(QosSchedulerTest, UnregisterDrainsQueueAndFallsBackToDefault) {
  ThreadPool pool(2);
  Latch started, release;
  pool.Submit([&] {
    started.Signal();
    release.Wait();
  });
  started.Wait();

  const uint64_t cls = pool.RegisterClass(1);
  OrderLog log;
  {
    ThreadPool::TagScope tag(&pool, cls);
    pool.Submit([&] { log.Record('1'); });
    pool.Submit([&] { log.Record('2'); });
  }
  pool.UnregisterClass(cls);  // Queue non-empty: retired, still drains.
  {
    // Submissions under a retired class fall back to class 0.
    ThreadPool::TagScope tag(&pool, cls);
    pool.Submit([&] { log.Record('3'); });
  }

  release.Signal();
  // Ring [cls, 0]: one retired task (weight-1 visit), the fallback task,
  // the last retired task — nothing is lost, nothing runs twice.
  EXPECT_EQ(log.WaitFor(3), "132");
  // The retired class's bookkeeping is gone once its queue drained.
  const ThreadPool::ClassStats stats = pool.class_stats(cls);
  EXPECT_EQ(stats.dispatched, 0u);
  EXPECT_EQ(stats.queued, 0u);
  // Unknown ids and class 0 are no-ops, not crashes.
  pool.UnregisterClass(cls);
  pool.UnregisterClass(0);
  pool.SetClassWeight(cls, 7);
}

// --- Admission gate -------------------------------------------------------

TEST(QosAdmissionTest, UnavailableStatusCarriesRetryAfter) {
  Status status = Status::Unavailable("try later").WithRetryAfterMs(7);
  EXPECT_TRUE(status.IsUnavailable());
  EXPECT_EQ(status.retry_after_ms(), 7u);
  EXPECT_NE(status.ToString().find("retry after 7ms"), std::string::npos)
      << status.ToString();
  // Other codes carry no hint.
  EXPECT_EQ(Status::NotFound("x").retry_after_ms(), 0u);
}

TEST(QosAdmissionTest, FailFastRejectsAtCapacity) {
  AdmissionGate gate(1, /*reject_over_capacity=*/true);
  {
    StatusOr<AdmissionGate::Slot> first = gate.Admit();
    ASSERT_TRUE(first.ok());

    StatusOr<AdmissionGate::Slot> second = gate.Admit();
    ASSERT_FALSE(second.ok());
    EXPECT_TRUE(second.status().IsUnavailable());
    // No service-time sample yet: the default hint applies.
    EXPECT_EQ(second.status().retry_after_ms(), 5u);

    AdmissionGate::Stats stats = gate.stats();
    EXPECT_EQ(stats.capacity, 1u);
    EXPECT_EQ(stats.inflight, 1u);
    EXPECT_EQ(stats.admitted, 1u);
    EXPECT_EQ(stats.rejected, 1u);
  }  // The slot releases on scope exit.
  EXPECT_TRUE(gate.Admit().ok());  // Capacity restored.
  EXPECT_EQ(gate.stats().admitted, 2u);
}

TEST(QosAdmissionTest, HintTracksServiceTimeEwma) {
  std::atomic<uint64_t> now{0};
  AdmissionGate gate(4, /*reject_over_capacity=*/true,
                     [&now] { return now.load(); });

  {
    StatusOr<AdmissionGate::Slot> slot = gate.Admit();
    ASSERT_TRUE(slot.ok());
    now = 80;  // The query took 80ms.
  }
  // First sample seeds the EWMA directly: 80ms across 4 slots = one slot
  // freeing every 20ms on average.
  EXPECT_EQ(gate.stats().ewma_ms, 80u);
  EXPECT_EQ(gate.RetryAfterHintMs(), 20u);

  {
    StatusOr<AdmissionGate::Slot> slot = gate.Admit();
    ASSERT_TRUE(slot.ok());
    now = 120;  // 40ms.
  }
  // EWMA alpha 1/8: 80 + (40-80)/8 = 75; hint = ceil(75/4) = 19.
  EXPECT_EQ(gate.stats().ewma_ms, 75u);
  EXPECT_EQ(gate.RetryAfterHintMs(), 19u);
}

TEST(QosAdmissionTest, HintIsClamped) {
  std::atomic<uint64_t> now{0};
  AdmissionGate slow(1, true, [&now] { return now.load(); });
  {
    StatusOr<AdmissionGate::Slot> slot = slow.Admit();
    ASSERT_TRUE(slot.ok());
    now = 10'000'000;  // A pathological 10000-second query.
  }
  EXPECT_EQ(slow.RetryAfterHintMs(), 10'000u);  // Ceiling: 10s.

  std::atomic<uint64_t> frozen{42};
  AdmissionGate fast(8, true, [&frozen] { return frozen.load(); });
  {
    StatusOr<AdmissionGate::Slot> slot = fast.Admit();
    ASSERT_TRUE(slot.ok());
  }  // 0ms elapsed.
  EXPECT_EQ(fast.RetryAfterHintMs(), 1u);  // Floor: never tell clients 0.
}

TEST(QosAdmissionTest, BlockingModeWaitsForASlot) {
  AdmissionGate gate(1, /*reject_over_capacity=*/false);
  auto held = std::make_unique<StatusOr<AdmissionGate::Slot>>(gate.Admit());
  ASSERT_TRUE(held->ok());

  Latch admitted;
  std::thread waiter([&] {
    StatusOr<AdmissionGate::Slot> slot = gate.Admit();  // Blocks: cap is 1.
    EXPECT_TRUE(slot.ok());
    admitted.Signal();
  });
  held.reset();  // Frees the slot; the waiter proceeds.
  admitted.Wait();
  waiter.join();
  AdmissionGate::Stats stats = gate.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.rejected, 0u);
}

// --- Tenant fixtures (mirrors tenant_test.cc) -----------------------------

std::string TempDir() {
  char tmpl[] = "/tmp/concealer-qos-test-XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

void RemoveDirRecursive(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
}

ConcealerConfig QosTestConfig() {
  ConcealerConfig config;
  config.key_buckets = {8};
  config.key_domains = {20};
  config.time_buckets = 24;
  config.num_cell_ids = 40;
  config.epoch_seconds = 86400;
  config.time_quantum = 60;
  config.make_hash_chains = true;
  return config;
}

struct TenantFixture {
  std::string id;
  ConcealerConfig config;
  std::unique_ptr<DataProvider> dp;
  std::vector<EncryptedEpoch> epochs;
  Bytes user_secret;
};

TenantFixture MakeTenant(const std::string& id, uint8_t seed,
                         uint64_t days = 1) {
  TenantFixture t;
  t.id = id;
  t.config = QosTestConfig();
  t.dp = std::make_unique<DataProvider>(t.config, Bytes(32, seed));
  const std::string secret = "secret-" + id;
  t.user_secret = Bytes(secret.begin(), secret.end());
  EXPECT_TRUE(t.dp->RegisterUser("alice", t.user_secret, "").ok());
  WifiConfig wifi;
  wifi.num_access_points = 20;
  wifi.num_devices = 50;
  wifi.start_time = 0;
  wifi.duration_seconds = days * 86400;
  wifi.total_rows = 1200 * days;
  wifi.seed = seed;
  auto epochs = t.dp->EncryptAll(WifiGenerator(wifi).Generate());
  EXPECT_TRUE(epochs.ok());
  t.epochs = std::move(*epochs);
  return t;
}

Bytes AliceProof(const TenantFixture& t) {
  return Registry::MakeProof(t.user_secret, "alice");
}

void Provision(TenantRegistry* registry, const TenantFixture& t,
               const TenantQoS& qos = {}) {
  ASSERT_TRUE(
      registry->CreateTenant(t.id, t.config, t.dp->shared_secret(), qos).ok());
  ASSERT_TRUE(registry->LoadRegistry(t.id, t.dp->EncryptedRegistry()).ok());
  for (const auto& e : t.epochs) {
    ASSERT_TRUE(registry->IngestEpoch(t.id, e).ok());
  }
}

/// Day-1 workload (fixtures here default to 1 day of data).
std::vector<Query> Day1Queries() {
  std::vector<Query> queries;
  for (uint64_t k : {4u, 9u, 14u}) {
    Query q;
    q.agg = Aggregate::kCount;
    q.key_values = {{k}};
    q.time_lo = 6 * 3600;
    q.time_hi = 9 * 3600;
    queries.push_back(q);
  }
  Query verified;
  verified.agg = Aggregate::kCount;
  verified.key_values = {{3}};
  verified.time_lo = 10 * 3600;
  verified.time_hi = 12 * 3600;
  verified.verify = true;
  queries.push_back(verified);
  Query topk;
  topk.agg = Aggregate::kTopK;
  topk.k = 3;
  topk.time_lo = 9 * 3600;
  topk.time_hi = 12 * 3600;
  queries.push_back(topk);
  return queries;
}

/// Reference bytes from a dedicated pre-QoS service (default options: no
/// shared pool, no DRR tag, blocking admission, no budgets) over the same
/// key material and data. The QoS path must match these byte for byte.
std::vector<Bytes> DedicatedAnswers(const TenantFixture& t,
                                    const std::vector<Query>& queries) {
  QueryService service(
      std::make_unique<ServiceProvider>(t.config, t.dp->shared_secret()),
      QueryServiceOptions{});
  EXPECT_TRUE(service.LoadRegistry(t.dp->EncryptedRegistry()).ok());
  for (const auto& e : t.epochs) {
    EXPECT_TRUE(service.IngestEpoch(e).ok());
  }
  auto token = service.OpenSession("alice", AliceProof(t));
  EXPECT_TRUE(token.ok());
  std::vector<Bytes> out;
  for (const Query& q : queries) {
    auto got = service.Execute(*token, q);
    EXPECT_TRUE(got.ok()) << got.status().ToString();
    out.push_back(got.ok() ? SerializeQueryResult(*got) : Bytes{});
  }
  return out;
}

/// Accounted cache bytes a dedicated service holds after `queries` — the
/// yardstick the budget test sizes its cap against.
size_t ProbeCacheBytes(const TenantFixture& t,
                       const std::vector<Query>& queries) {
  QueryService service(
      std::make_unique<ServiceProvider>(t.config, t.dp->shared_secret()),
      QueryServiceOptions{});
  EXPECT_TRUE(service.LoadRegistry(t.dp->EncryptedRegistry()).ok());
  for (const auto& e : t.epochs) {
    EXPECT_TRUE(service.IngestEpoch(e).ok());
  }
  auto token = service.OpenSession("alice", AliceProof(t));
  EXPECT_TRUE(token.ok());
  for (const Query& q : queries) {
    EXPECT_TRUE(service.Execute(*token, q).ok());
  }
  return service.cache_stats().bytes;
}

// --- Backpressure through the registry (fault injection) ------------------

/// One-shot slot pin: the first query whose hook runs while `armed` blocks
/// inside the hook — HOLDING its admission slot — until Release() fires.
/// Later queries (any tenant) pass straight through, so the pinned tenant
/// rejects while its neighbors serve normally.
struct SlotPin {
  std::atomic<bool> armed{false};
  Latch entered;
  Latch release;

  std::function<void()> Hook() {
    return [this] {
      if (armed.exchange(false)) {
        entered.Signal();
        release.Wait();
      }
    };
  }
};

class QosBackpressureTest : public ::testing::Test {
 protected:
  void SetUp() override { root_ = TempDir(); }
  void TearDown() override { RemoveDirRecursive(root_); }

  TenantRegistryOptions Options() {
    TenantRegistryOptions options;
    options.root_dir = root_;
    options.pool_threads = 4;
    options.service.reject_over_capacity = true;
    options.service.execute_fault_hook = pin_.Hook();
    return options;
  }

  std::string root_;
  SlotPin pin_;
};

TEST_F(QosBackpressureTest, OverCapTenantShedsLoadOthersUnperturbed) {
  TenantRegistry registry(Options());
  TenantFixture acme = MakeTenant("acme", 0x71);
  TenantFixture bolt = MakeTenant("bolt", 0x72);
  // acme: a single admission slot, so one pinned query saturates it.
  Provision(&registry, acme, TenantQoS{1, /*max_inflight=*/1});
  Provision(&registry, bolt);

  const std::vector<Query> queries = Day1Queries();
  const std::vector<Bytes> want_bolt = DedicatedAnswers(bolt, queries);
  auto acme_token = registry.OpenSession("acme", "alice", AliceProof(acme));
  auto bolt_token = registry.OpenSession("bolt", "alice", AliceProof(bolt));
  ASSERT_TRUE(acme_token.ok());
  ASSERT_TRUE(bolt_token.ok());

  // Pin acme's only slot: the hooked query blocks inside the service while
  // holding its admission slot.
  pin_.armed = true;
  std::thread pinned([&] {
    auto got = registry.Query("acme", *acme_token, queries[0]);
    EXPECT_TRUE(got.ok()) << got.status().ToString();
  });
  pin_.entered.Wait();

  // acme is saturated: immediate Unavailable + retry-after, round-tripped
  // through the registry front door, never a hang.
  for (int i = 0; i < 3; ++i) {
    auto rejected = registry.Query("acme", *acme_token, queries[1]);
    ASSERT_FALSE(rejected.ok());
    EXPECT_TRUE(rejected.status().IsUnavailable())
        << rejected.status().ToString();
    EXPECT_GE(rejected.status().retry_after_ms(), 1u);
  }
  auto acme_service = registry.tenant("acme");
  ASSERT_TRUE(acme_service.ok());
  EXPECT_GE((*acme_service)->admission_stats().rejected, 3u);
  EXPECT_EQ((*acme_service)->admission_stats().inflight, 1u);

  // bolt is untouched by acme's saturation: every answer byte-identical to
  // the dedicated service.
  for (size_t i = 0; i < queries.size(); ++i) {
    auto got = registry.Query("bolt", *bolt_token, queries[i]);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(SerializeQueryResult(*got), want_bolt[i]) << "query " << i;
  }

  pin_.release.Signal();
  pinned.join();
  // Slot freed: acme serves again.
  EXPECT_TRUE(registry.Query("acme", *acme_token, queries[1]).ok());
}

TEST_F(QosBackpressureTest, RetryingClientRidesOutBackpressure) {
  TenantRegistry registry(Options());
  TenantFixture acme = MakeTenant("acme", 0x73);
  Provision(&registry, acme, TenantQoS{1, /*max_inflight=*/1});

  const std::vector<Query> queries = Day1Queries();
  const std::vector<Bytes> want = DedicatedAnswers(acme, queries);
  auto token = registry.OpenSession("acme", "alice", AliceProof(acme));
  ASSERT_TRUE(token.ok());

  pin_.armed = true;
  std::thread pinned([&] {
    auto got = registry.Query("acme", *token, queries[0]);
    EXPECT_TRUE(got.ok());
  });
  pin_.entered.Wait();

  // The retrying client: attempt 1 rejects; the injected sleep releases
  // the pin and joins the pinned query (so its slot is provably free), and
  // attempt 2 succeeds. Zero wall-clock waiting, fully deterministic.
  std::vector<uint64_t> waits;
  bool released = false;
  RetryOptions retry;
  retry.sleep_ms = [&](uint64_t ms) {
    waits.push_back(ms);
    if (!released) {
      released = true;
      pin_.release.Signal();
      pinned.join();
    }
  };
  auto got = RetryQuery(registry, "acme", *token, queries[1], retry);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(SerializeQueryResult(*got), want[1]);
  ASSERT_EQ(waits.size(), 1u);
  EXPECT_GE(waits[0], 1u);  // The server hint floors the wait.

  // Non-retryable failures pass through untouched (no attempts burned).
  int calls = 0;
  auto bad = RetryOnUnavailable([&] {
    ++calls;
    return StatusOr<QueryResult>(Status::NotFound("no such tenant"));
  });
  EXPECT_TRUE(bad.status().IsNotFound());
  EXPECT_EQ(calls, 1);
}

// --- Retry policy: decorrelated jitter + overall budget --------------------
// Wall-time free: rand01 / clock_ms / sleep_ms are all injected.

TEST(QosRetryTest, JitterWaitsFollowDecorrelatedRecurrenceExactly) {
  // With rand01 pinned to 0.5, every wait is the midpoint of
  // [floor, min(3 × previous wait, max_backoff)] and the schedule is
  // exactly predictable: floor = max(hint=0, initial=4) = 4, so
  // caps go 12, 24, 42 and waits 8, 14, 23.
  std::vector<uint64_t> waits;
  RetryOptions retry;
  retry.max_attempts = 4;
  retry.initial_backoff_ms = 4;
  retry.rand01 = [] { return 0.5; };
  retry.sleep_ms = [&](uint64_t ms) { waits.push_back(ms); };
  int calls = 0;
  auto result = RetryOnUnavailable(
      [&]() -> StatusOr<int> {
        ++calls;
        return Status::Unavailable("saturated");
      },
      retry);
  EXPECT_TRUE(result.status().IsUnavailable());
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(waits, (std::vector<uint64_t>{8, 14, 23}));
}

TEST(QosRetryTest, JitterRespectsHintFloorAndBackoffCeiling) {
  // The server hint floors every draw; max_backoff_ms ceilings it. With
  // hint=50, initial=4, max_backoff=60: floor=50, first cap collapses to
  // the floor (3×4=12 < 50) so the wait is exactly 50 even at r→1; the
  // second cap is min(60, 150)=60, so the wait lives in [50, 60].
  std::vector<uint64_t> waits;
  RetryOptions retry;
  retry.max_attempts = 3;
  retry.initial_backoff_ms = 4;
  retry.max_backoff_ms = 60;
  retry.rand01 = [] { return 0.999; };
  retry.sleep_ms = [&](uint64_t ms) { waits.push_back(ms); };
  auto result = RetryOnUnavailable(
      [&]() -> StatusOr<int> {
        return Status::Unavailable("saturated").WithRetryAfterMs(50);
      },
      retry);
  EXPECT_TRUE(result.status().IsUnavailable());
  ASSERT_EQ(waits.size(), 2u);
  EXPECT_EQ(waits[0], 50u);
  EXPECT_GE(waits[1], 50u);
  EXPECT_LE(waits[1], 60u);
}

TEST(QosRetryTest, BudgetExhaustionReturnsDeadlineExceededWithoutSleeping) {
  // Fake clock advanced only by the fake sleep: attempt 1 waits 40ms
  // (elapsed 40), attempt 2 would wait 80ms, 40+80 > 100 → the loop gives
  // up with kDeadlineExceeded BEFORE sleeping, not after.
  uint64_t now = 0;
  std::vector<uint64_t> waits;
  RetryOptions retry;
  retry.jitter = false;
  retry.max_attempts = 100;
  retry.initial_backoff_ms = 40;
  retry.max_elapsed_ms = 100;
  retry.clock_ms = [&] { return now; };
  retry.sleep_ms = [&](uint64_t ms) {
    waits.push_back(ms);
    now += ms;
  };
  int calls = 0;
  auto result = RetryOnUnavailable(
      [&]() -> StatusOr<int> {
        ++calls;
        return Status::Unavailable("saturated");
      },
      retry);
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(waits, (std::vector<uint64_t>{40}));
  EXPECT_NE(result.status().message().find("retry budget"), std::string::npos);
}

TEST(QosRetryTest, BudgetLeavesSuccessAndNonRetryableUntouched) {
  uint64_t now = 0;
  RetryOptions retry;
  retry.jitter = false;
  retry.max_elapsed_ms = 1000;
  retry.clock_ms = [&] { return now; };
  retry.sleep_ms = [&](uint64_t ms) { now += ms; };
  int calls = 0;
  auto ok = RetryOnUnavailable(
      [&]() -> StatusOr<int> {
        if (++calls < 3) return Status::Unavailable("warming");
        return 7;
      },
      retry);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  EXPECT_EQ(calls, 3);

  auto bad = RetryOnUnavailable(
      [&]() -> StatusOr<int> { return Status::NotFound("gone"); }, retry);
  EXPECT_TRUE(bad.status().IsNotFound());
}

TEST_F(QosBackpressureTest, DropTenantMidBackpressureLeavesOthersIntact) {
  TenantRegistry registry(Options());
  TenantFixture acme = MakeTenant("acme", 0x74);
  TenantFixture bolt = MakeTenant("bolt", 0x75);
  Provision(&registry, acme, TenantQoS{2, /*max_inflight=*/1});
  Provision(&registry, bolt, TenantQoS{1, 0});

  const std::vector<Query> queries = Day1Queries();
  const std::vector<Bytes> want_bolt = DedicatedAnswers(bolt, queries);
  auto acme_token = registry.OpenSession("acme", "alice", AliceProof(acme));
  auto bolt_token = registry.OpenSession("bolt", "alice", AliceProof(bolt));
  ASSERT_TRUE(acme_token.ok());
  ASSERT_TRUE(bolt_token.ok());

  // Saturate acme and reject a caller mid-flight.
  pin_.armed = true;
  std::thread pinned([&] {
    // DropTenant drains in-flight queries, so the pinned query itself
    // still completes before the tenant dies.
    auto got = registry.Query("acme", *acme_token, queries[0]);
    EXPECT_TRUE(got.ok());
  });
  pin_.entered.Wait();
  EXPECT_TRUE(registry.Query("acme", *acme_token, queries[1])
                  .status()
                  .IsUnavailable());

  // Release and drop the tenant while its backpressure state is warm.
  pin_.release.Signal();
  pinned.join();
  ASSERT_TRUE(registry.DropTenant("acme").ok());
  EXPECT_TRUE(
      registry.Query("acme", *acme_token, queries[0]).status().IsNotFound());

  // bolt neither lost capacity nor changed a byte.
  for (size_t i = 0; i < queries.size(); ++i) {
    auto got = registry.Query("bolt", *bolt_token, queries[i]);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(SerializeQueryResult(*got), want_bolt[i]) << "query " << i;
  }
  // acme's scheduling class retired with it; bolt's survives.
  auto bolt_service = registry.tenant("bolt");
  ASSERT_TRUE(bolt_service.ok());
  EXPECT_EQ(
      registry.shared_pool()->class_stats((*bolt_service)->sched_class())
          .weight,
      1u);
}

// --- Global work-cache byte budget ----------------------------------------

TEST(QosCacheBudgetTest, DebtAssignedColdestFirst) {
  WorkCacheBudget budget(1000);
  const uint64_t a = budget.Register();
  const uint64_t b = budget.Register();
  const uint64_t c = budget.Register();

  budget.Update(a, 400);
  budget.Update(b, 400);
  EXPECT_EQ(budget.TotalDebtBytes(), 0u);  // 800 <= 1000.

  budget.Update(c, 500);  // 1300: 300 over — the coldest (a) owes it all.
  EXPECT_EQ(budget.PendingReclaimBytes(a), 300u);
  EXPECT_EQ(budget.PendingReclaimBytes(b), 0u);
  EXPECT_EQ(budget.PendingReclaimBytes(c), 0u);
  EXPECT_EQ(budget.TotalDebtBytes(), 300u);
  EXPECT_EQ(budget.stats().steals, 1u);

  // a pays (ReportBytes: no recency bump) — debt clears, totals settle.
  budget.ReportBytes(a, 100);
  EXPECT_EQ(budget.TotalDebtBytes(), 0u);
  EXPECT_EQ(budget.stats().total_bytes, 1000u);

  // a becomes hottest; the next overage falls on c (now coldest).
  budget.Update(a, 100);
  budget.Update(b, 700);  // 1300 again.
  EXPECT_EQ(budget.PendingReclaimBytes(c), 300u);
  EXPECT_EQ(budget.PendingReclaimBytes(a), 0u);
  EXPECT_EQ(budget.stats().steals, 2u);

  // Unregistering the debtor clears its bytes and its debt.
  budget.Unregister(c);
  EXPECT_EQ(budget.TotalDebtBytes(), 0u);
  EXPECT_EQ(budget.stats().total_bytes, 800u);
}

TEST(QosCacheBudgetTest, ZeroCapIsInertNoOp) {
  WorkCacheBudget budget(0);
  const uint64_t t = budget.Register();
  budget.Update(t, 1 << 30);
  EXPECT_EQ(budget.TotalDebtBytes(), 0u);
  EXPECT_EQ(budget.PendingReclaimBytes(t), 0u);
  EXPECT_EQ(budget.stats().total_bytes, 0u);
  budget.Unregister(t);
}

TEST(QosCacheBudgetTest, OverageLargerThanColdestSpillsToNext) {
  WorkCacheBudget budget(100);
  const uint64_t a = budget.Register();
  const uint64_t b = budget.Register();
  budget.Update(a, 50);
  budget.Update(b, 400);  // 350 over; a holds only 50 — b covers the rest.
  EXPECT_EQ(budget.PendingReclaimBytes(a), 50u);
  EXPECT_EQ(budget.PendingReclaimBytes(b), 300u);
  EXPECT_EQ(budget.TotalDebtBytes(), 350u);
}

TEST(QosCacheBudgetTest, GlobalBudgetBoundsTenantsAndRecomputesCorrectly) {
  // Yardstick: how many cache bytes this workload costs one tenant.
  TenantFixture cold = MakeTenant("cold", 0x76);
  TenantFixture hot = MakeTenant("hot", 0x77);
  const std::vector<Query> queries = Day1Queries();
  const size_t one_tenant_bytes = ProbeCacheBytes(cold, queries);
  ASSERT_GT(one_tenant_bytes, 0u);

  // Cap at 1.5x one tenant: two full tenants cannot both stay resident.
  const std::string root = TempDir();
  {
    TenantRegistryOptions options;
    options.root_dir = root;
    options.pool_threads = 4;
    options.global_cache_bytes = one_tenant_bytes + one_tenant_bytes / 2;
    TenantRegistry registry(options);
    Provision(&registry, cold);
    Provision(&registry, hot);

    auto cold_token = registry.OpenSession("cold", "alice", AliceProof(cold));
    auto hot_token = registry.OpenSession("hot", "alice", AliceProof(hot));
    ASSERT_TRUE(cold_token.ok());
    ASSERT_TRUE(hot_token.ok());
    auto cold_service = registry.tenant("cold");
    auto hot_service = registry.tenant("hot");
    ASSERT_TRUE(cold_service.ok());
    ASSERT_TRUE(hot_service.ok());

    // cold fills its cache first (within budget on its own)...
    for (const Query& q : queries) {
      ASSERT_TRUE(registry.Query("cold", *cold_token, q).ok());
    }
    const size_t cold_before = (*cold_service)->cache_stats().bytes;
    EXPECT_GT(cold_before, 0u);

    // ...then hot fills its own, pushing the total over the cap. The
    // overage lands on the globally-coldest tenant — cold — as debt.
    for (const Query& q : queries) {
      ASSERT_TRUE(registry.Query("hot", *hot_token, q).ok());
    }

    // Settle synchronously (the background reclaimer may already have) and
    // check the invariant the budget exists for: total accounted bytes are
    // back under the cap, nobody owes anything, and the reclaim stole from
    // the cold tenant, not the hot one.
    ASSERT_TRUE(registry.ReclaimOverBudget().ok());
    ASSERT_NE(registry.cache_budget(), nullptr);
    WorkCacheBudget::Stats stats = registry.cache_budget()->stats();
    EXPECT_EQ(stats.debt_bytes, 0u);
    EXPECT_LE(stats.total_bytes, stats.cap);
    EXPECT_GE(stats.steals, 1u);
    EXPECT_LT((*cold_service)->cache_stats().bytes, cold_before);
    EXPECT_GT((*hot_service)->cache_stats().bytes, 0u);

    // The reclaimed tenant recomputes instead of breaking: every answer
    // after the flush is byte-identical to a dedicated never-reclaimed
    // service.
    const std::vector<Bytes> want = DedicatedAnswers(cold, queries);
    for (size_t i = 0; i < queries.size(); ++i) {
      auto got = registry.Query("cold", *cold_token, queries[i]);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(SerializeQueryResult(*got), want[i]) << "query " << i;
    }
    // The refill may overshoot again transiently; one more settle restores
    // the bound.
    ASSERT_TRUE(registry.ReclaimOverBudget().ok());
    stats = registry.cache_budget()->stats();
    EXPECT_EQ(stats.debt_bytes, 0u);
    EXPECT_LE(stats.total_bytes, stats.cap);
  }
  RemoveDirRecursive(root);
}

// --- End-to-end equivalence against the pre-QoS path ----------------------

TEST(QosEquivalenceTest, WeightedFailFastRegistryMatchesDedicatedService) {
  const std::string root = TempDir();
  {
    TenantRegistryOptions options;
    options.root_dir = root;
    options.pool_threads = 4;
    options.service.reject_over_capacity = true;
    options.service.max_inflight = 2;
    options.global_cache_bytes = 1 << 20;
    TenantRegistry registry(options);

    TenantFixture heavy = MakeTenant("heavy", 0x78);
    TenantFixture light = MakeTenant("light", 0x79);
    Provision(&registry, heavy, TenantQoS{3, 0});
    Provision(&registry, light, TenantQoS{1, 0});

    // The weights really landed on the shared pool's classes.
    auto heavy_service = registry.tenant("heavy");
    auto light_service = registry.tenant("light");
    ASSERT_TRUE(heavy_service.ok());
    ASSERT_TRUE(light_service.ok());
    EXPECT_NE((*heavy_service)->sched_class(), 0u);
    EXPECT_EQ(registry.shared_pool()
                  ->class_stats((*heavy_service)->sched_class())
                  .weight,
              3u);
    EXPECT_EQ(registry.shared_pool()
                  ->class_stats((*light_service)->sched_class())
                  .weight,
              1u);

    const std::vector<Query> queries = Day1Queries();
    const std::vector<Bytes> want_heavy = DedicatedAnswers(heavy, queries);
    const std::vector<Bytes> want_light = DedicatedAnswers(light, queries);
    auto heavy_token =
        registry.OpenSession("heavy", "alice", AliceProof(heavy));
    auto light_token =
        registry.OpenSession("light", "alice", AliceProof(light));
    ASSERT_TRUE(heavy_token.ok());
    ASSERT_TRUE(light_token.ok());

    // Hammer both tenants from several threads through the retrying client:
    // DRR scheduling, fail-fast admission, retries and the global cache
    // budget all engaged at once — and every single answer byte-identical
    // to the dedicated pre-QoS service.
    constexpr int kThreads = 4;
    constexpr int kRounds = 2;
    std::atomic<int> mismatches{0};
    std::atomic<int> failures{0};
    RetryOptions retry;
    retry.max_attempts = 100;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int round = 0; round < kRounds; ++round) {
          for (size_t i = 0; i < queries.size(); ++i) {
            const size_t qi = (i + t) % queries.size();
            const bool use_heavy = (t + round) % 2 == 0;
            auto got = RetryQuery(registry, use_heavy ? "heavy" : "light",
                                  use_heavy ? *heavy_token : *light_token,
                                  queries[qi], retry);
            const Bytes& want = use_heavy ? want_heavy[qi] : want_light[qi];
            if (!got.ok()) {
              ++failures;
            } else if (SerializeQueryResult(*got) != want) {
              ++mismatches;
            }
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(mismatches.load(), 0);

    // The heavy class actually carried pool work under its own tag.
    EXPECT_GT(registry.shared_pool()
                  ->class_stats((*heavy_service)->sched_class())
                  .dispatched,
              0u);
  }
  RemoveDirRecursive(root);
}

}  // namespace
}  // namespace concealer
