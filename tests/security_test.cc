// Security-property tests measured through the adversary's view: volume
// hiding via the LeakageObserver, §8 workload-skew flattening, oblivious
// trace data-independence at query level, forward privacy across epochs,
// fake/real ciphertext indistinguishability, and the epoch transport
// format.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>

#include "common/random.h"
#include "concealer/data_provider.h"
#include "concealer/epoch_io.h"
#include "concealer/leakage.h"
#include "concealer/service_provider.h"
#include "concealer/super_bins.h"
#include "concealer/wire.h"
#include "enclave/oblivious.h"
#include "workload/wifi_generator.h"

namespace concealer {
namespace {

ConcealerConfig SmallConfig() {
  ConcealerConfig config;
  config.key_buckets = {8};
  config.key_domains = {20};
  config.time_buckets = 24;
  config.num_cell_ids = 40;
  config.epoch_seconds = 86400;
  config.time_quantum = 60;
  return config;
}

std::vector<PlainTuple> SmallWorkload(uint64_t rows, uint64_t seed) {
  WifiConfig wifi;
  wifi.num_access_points = 20;
  wifi.num_devices = 60;
  wifi.start_time = 0;
  wifi.duration_seconds = 86400;
  wifi.total_rows = rows;
  wifi.seed = seed;
  return WifiGenerator(wifi).Generate();
}

class SecurityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = SmallConfig();
    tuples_ = SmallWorkload(3000, 13);
    dp_ = std::make_unique<DataProvider>(config_, Bytes(32, 0x44));
    sp_ = std::make_unique<ServiceProvider>(config_, dp_->shared_secret());
    auto epochs = dp_->EncryptAll(tuples_);
    ASSERT_TRUE(epochs.ok());
    epoch_ = (*epochs)[0];
    ASSERT_TRUE(sp_->IngestEpoch(epoch_).ok());
  }

  ConcealerConfig config_;
  std::vector<PlainTuple> tuples_;
  std::unique_ptr<DataProvider> dp_;
  std::unique_ptr<ServiceProvider> sp_;
  EncryptedEpoch epoch_;
};

TEST_F(SecurityTest, LeakageObserverSeesConstantPointVolumes) {
  LeakageObserver observer(&sp_->table());
  Rng rng(17);
  for (int i = 0; i < 12; ++i) {
    Query q;
    q.agg = Aggregate::kCount;
    q.key_values = {{rng.Uniform(20)}};
    q.time_lo = q.time_hi = rng.Uniform(86400 / 60) * 60;
    observer.BeginQuery();
    ASSERT_TRUE(sp_->Execute(q).ok());
    observer.EndQuery("point");
  }
  EXPECT_TRUE(observer.VolumesAreConstant())
      << observer.DistinctVolumes() << " distinct volumes observed";
  // Probe counts (trapdoors issued) are equally constant.
  std::set<uint64_t> probes(observer.probe_counts().begin(),
                            observer.probe_counts().end());
  EXPECT_EQ(probes.size(), 1u);
}

TEST_F(SecurityTest, SelectivityIsNotObservableFromVolume) {
  // A hot location and an empty location must produce identical adversary
  // observations even though the true result sizes differ wildly.
  std::map<uint64_t, uint64_t> per_loc;
  for (const auto& t : tuples_) per_loc[t.keys[0]]++;
  uint64_t hot = 0, hot_count = 0;
  for (auto& [loc, count] : per_loc) {
    if (count > hot_count) {
      hot = loc;
      hot_count = count;
    }
  }
  LeakageObserver observer(&sp_->table());
  for (uint64_t loc : {hot, uint64_t{19}}) {
    Query q;
    q.agg = Aggregate::kCount;
    q.key_values = {{loc}};
    q.time_lo = 0;
    q.time_hi = 86399;
    q.method = RangeMethod::kWinSecRange;  // Whole-epoch fixed intervals.
    observer.BeginQuery();
    auto r = sp_->Execute(q);
    ASSERT_TRUE(r.ok());
    observer.EndQuery();
  }
  EXPECT_TRUE(observer.VolumesAreConstant());
}

TEST_F(SecurityTest, ObliviousQueryTraceIsDataIndependent) {
  // Two point queries with very different selectivity must execute the
  // same number of oblivious operations within the same bin — the §4.3
  // guarantee that in-enclave access patterns do not track the data.
  // (Slot shapes are constant per plan, so any two bins match.)
  std::vector<uint64_t> op_counts;
  Rng rng(23);
  for (int i = 0; i < 6; ++i) {
    Query q;
    q.agg = Aggregate::kCount;
    q.key_values = {{rng.Uniform(20)}};
    q.time_lo = q.time_hi = rng.Uniform(86400 / 60) * 60;
    q.oblivious = true;
    OpCounter().Reset();
    ASSERT_TRUE(sp_->Execute(q).ok());
    op_counts.push_back(OpCounter().Total());
  }
  std::set<uint64_t> distinct(op_counts.begin(), op_counts.end());
  EXPECT_EQ(distinct.size(), 1u)
      << "oblivious op trace varies across point queries";
}

TEST_F(SecurityTest, ForwardPrivacy_TrapdoorsDoNotMatchOtherEpochs) {
  // Encrypt a second epoch holding the same logical values shifted by one
  // day: no ciphertext bytes can collide with epoch 0's rows.
  std::vector<PlainTuple> day2 = tuples_;
  for (auto& t : day2) t.time += 86400;
  auto epochs = dp_->EncryptAll(day2);
  ASSERT_TRUE(epochs.ok());
  std::set<Bytes> epoch0_cols;
  for (const Row& row : epoch_.rows) {
    for (const Column& col : row.columns) epoch0_cols.insert(col.ToBytes());
  }
  for (const Row& row : (*epochs)[0].rows) {
    for (const Column& col : row.columns) {
      EXPECT_EQ(epoch0_cols.count(col.ToBytes()), 0u);
    }
  }
}

TEST_F(SecurityTest, FakeRowsIndistinguishableByLengthAndEntropy) {
  // Fake tuples must blend in: per column, the multiset of ciphertext
  // lengths of fake rows is a subset of the real rows' length multiset,
  // and no byte position is constant across fakes.
  auto state = sp_->epoch_state(0);
  ASSERT_TRUE(state.ok());
  auto det = sp_->enclave().EpochDetCipher(0);
  ASSERT_TRUE(det.ok());

  std::set<size_t> real_el_lens, fake_el_lens;
  std::vector<Bytes> fake_els;
  for (const Row& row : epoch_.rows) {
    const bool is_fake = !det->Decrypt(row.columns[kColEr]).ok();
    if (is_fake) {
      fake_el_lens.insert(row.columns[kColEl].size());
      fake_els.push_back(row.columns[kColEl].ToBytes());
    } else {
      real_el_lens.insert(row.columns[kColEl].size());
    }
  }
  ASSERT_GT(fake_els.size(), 1u);
  for (size_t len : fake_el_lens) {
    EXPECT_TRUE(real_el_lens.count(len) > 0)
        << "fake length " << len << " never occurs among real rows";
  }
  // Entropy check: first byte varies across fakes.
  std::set<uint8_t> first_bytes;
  for (const auto& el : fake_els) first_bytes.insert(el[0]);
  EXPECT_GT(first_bytes.size(), 1u);
}

TEST_F(SecurityTest, WorkloadSkewFlattensWithSuperBins) {
  auto state = sp_->epoch_state(0);
  ASSERT_TRUE(state.ok());
  auto plan = (*state)->GetBinPlan(PackAlgorithm::kFirstFitDecreasing);
  ASSERT_TRUE(plan.ok());
  const auto& layout = (*state)->layout();
  const uint32_t num_bins = static_cast<uint32_t>((*plan)->bins.size());

  auto base = SimulateUniformWorkload(layout, (*plan)->bin_of_cell_id,
                                      num_bins, {});
  uint32_t f = 1;
  for (uint32_t cand = 2; cand * 2 <= num_bins; ++cand) {
    if (num_bins % cand == 0) f = cand;  // Largest proper divisor <= n/2.
  }
  if (f == 1) GTEST_SKIP() << "prime bin count; no nontrivial factor";
  auto sbp = MakeSuperBins(
      EstimateUniqueValuesPerBin(**plan, layout), f);
  ASSERT_TRUE(sbp.ok());
  auto flattened = SimulateUniformWorkload(layout, (*plan)->bin_of_cell_id,
                                           num_bins, sbp->super_of_bin);
  EXPECT_LE(flattened.skew, base.skew);
  EXPECT_LE(flattened.max_retrievals - flattened.min_retrievals,
            base.max_retrievals - base.min_retrievals);
}

TEST_F(SecurityTest, EpochTransportRoundTrips) {
  const Bytes blob = SerializeEpoch(epoch_);
  auto back = DeserializeEpoch(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->epoch_id, epoch_.epoch_id);
  EXPECT_EQ(back->num_real_tuples, epoch_.num_real_tuples);
  EXPECT_EQ(back->num_fake_tuples, epoch_.num_fake_tuples);
  ASSERT_EQ(back->rows.size(), epoch_.rows.size());
  EXPECT_EQ(back->rows[0].columns, epoch_.rows[0].columns);
  EXPECT_EQ(back->enc_grid_layout, epoch_.enc_grid_layout);

  // A fresh SP can ingest the deserialized epoch and answer correctly.
  ServiceProvider sp2(config_, dp_->shared_secret());
  ASSERT_TRUE(sp2.IngestEpoch(*back).ok());
  Query q;
  q.agg = Aggregate::kCount;
  q.key_values = {{3}};
  q.time_lo = 0;
  q.time_hi = 86399;
  auto a = sp_->Execute(q);
  auto b = sp2.Execute(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->count, b->count);
}

TEST_F(SecurityTest, EpochTransportRejectsMangling) {
  Bytes blob = SerializeEpoch(epoch_);
  // Truncation.
  Bytes truncated(blob.begin(), blob.end() - 5);
  EXPECT_FALSE(DeserializeEpoch(truncated).ok());
  // Bit flip in the body.
  Bytes flipped = blob;
  flipped[flipped.size() / 2] ^= 1;
  EXPECT_TRUE(DeserializeEpoch(flipped).status().IsCorruption());
  // Bad magic.
  Bytes bad_magic = blob;
  bad_magic[0] ^= 0xff;
  EXPECT_TRUE(DeserializeEpoch(bad_magic).status().IsCorruption());
  // Unsupported version.
  Bytes bad_version = blob;
  bad_version[4] = 0x7f;
  EXPECT_TRUE(DeserializeEpoch(bad_version).status().IsInvalidArgument());
}

TEST_F(SecurityTest, EpochFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/concealer_epoch.bin";
  ASSERT_TRUE(WriteEpochFile(path, epoch_).ok());
  auto back = ReadEpochFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->rows.size(), epoch_.rows.size());
  EXPECT_TRUE(ReadEpochFile(path + ".missing").status().IsNotFound());
  std::remove(path.c_str());
}

TEST_F(SecurityTest, CiphertextIndistinguishability_ErUniquePerRow) {
  // Every Er ciphertext in the epoch is unique (DET over tuples made
  // unique by their timestamps/payloads — paper §7 "ciphertext
  // indistinguishability").
  std::set<Bytes> ers;
  for (const Row& row : epoch_.rows) {
    EXPECT_TRUE(ers.insert(row.columns[kColEr].ToBytes()).second);
  }
  // And the Index column is unique by construction.
  std::set<Bytes> indexes;
  for (const Row& row : epoch_.rows) {
    EXPECT_TRUE(indexes.insert(row.columns[kColIndex].ToBytes()).second);
  }
}

}  // namespace
}  // namespace concealer
