// Multi-tenant QueryService tests: session lifecycle (one authentication
// amortized over many queries, expiry, invalid proofs), cross-query
// enclave-work cache correctness (hits change nothing but the work done),
// and the concurrency contract — many clients hammering mixed queries get
// answers byte-identical to a serial replay, in static and dynamic mode.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "baseline/cleartext_db.h"
#include "common/striped_map.h"
#include "concealer/data_provider.h"
#include "concealer/wire.h"
#include "enclave/registry.h"
#include "service/query_service.h"
#include "workload/wifi_generator.h"

namespace concealer {
namespace {

ConcealerConfig ServiceTestConfig() {
  ConcealerConfig config;
  config.key_buckets = {8};
  config.key_domains = {20};
  config.time_buckets = 24;
  config.num_cell_ids = 40;
  config.epoch_seconds = 86400;
  config.time_quantum = 60;
  config.make_hash_chains = true;
  return config;
}

std::vector<PlainTuple> ServiceTestTuples() {
  WifiConfig wifi;
  wifi.num_access_points = 20;
  wifi.num_devices = 50;
  wifi.start_time = 0;
  wifi.duration_seconds = 2 * 86400;
  wifi.total_rows = 4000;
  wifi.seed = 99;
  WifiGenerator gen(wifi);
  return gen.Generate();
}

// A fake clock the tests advance by hand to drive session expiry.
struct FakeClock {
  std::shared_ptr<std::atomic<uint64_t>> now =
      std::make_shared<std::atomic<uint64_t>>(1000);
  SessionManager::Clock AsClock() const {
    auto n = now;
    return [n] { return n->load(); };
  }
};

class QueryServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = ServiceTestConfig();
    tuples_ = ServiceTestTuples();
    dp_ = std::make_unique<DataProvider>(config_, Bytes(32, 0x24));
    ASSERT_TRUE(dp_->RegisterUser("alice", Slice("alice-secret", 12),
                                  tuples_[0].observation)
                    .ok());
    ASSERT_TRUE(dp_->RegisterUser("bob", Slice("bob-secret", 10), "").ok());
    oracle_ = std::make_unique<CleartextDb>(config_.time_quantum);
    oracle_->Insert(tuples_);
  }

  // Builds a service over a freshly ingested provider.
  std::unique_ptr<QueryService> MakeService(QueryServiceOptions options) {
    auto sp =
        std::make_unique<ServiceProvider>(config_, dp_->shared_secret());
    auto service = std::make_unique<QueryService>(std::move(sp), options);
    EXPECT_TRUE(service->LoadRegistry(dp_->EncryptedRegistry()).ok());
    auto epochs = dp_->EncryptAll(tuples_);
    EXPECT_TRUE(epochs.ok());
    for (const auto& e : *epochs) {
      EXPECT_TRUE(service->IngestEpoch(e).ok());
    }
    return service;
  }

  static Bytes Proof(const std::string& user, Slice secret) {
    return Registry::MakeProof(secret, user);
  }

  // A deterministic mixed workload: point, range (all methods), top-k,
  // threshold and verified queries spread over both epochs.
  static std::vector<Query> MixedQueries() {
    std::vector<Query> queries;
    for (uint64_t i = 0; i < 6; ++i) {
      Query point;
      point.agg = Aggregate::kCount;
      point.key_values = {{(i * 3) % 20}};
      point.time_lo = point.time_hi = (i * 7 + 2) * 3600;
      queries.push_back(point);
    }
    int mi = 0;
    for (RangeMethod m : {RangeMethod::kBPB, RangeMethod::kEBPB,
                          RangeMethod::kWinSecRange}) {
      Query range;
      range.agg = Aggregate::kCount;
      range.key_values = {{static_cast<uint64_t>(4 + mi)}};
      range.time_lo = (3 + mi) * 3600;
      range.time_hi = (6 + mi) * 3600;
      range.method = m;
      queries.push_back(range);
      ++mi;
    }
    Query topk;
    topk.agg = Aggregate::kTopK;
    topk.k = 4;
    topk.time_lo = 9 * 3600;
    topk.time_hi = 11 * 3600;
    queries.push_back(topk);
    Query threshold;
    threshold.agg = Aggregate::kThresholdKeys;
    threshold.threshold = 5;
    threshold.time_lo = 86400 + 8 * 3600;
    threshold.time_hi = 86400 + 12 * 3600;
    queries.push_back(threshold);
    Query verified;
    verified.agg = Aggregate::kCount;
    verified.key_values = {{7}};
    verified.time_lo = 10 * 3600;
    verified.time_hi = 12 * 3600;
    verified.verify = true;
    queries.push_back(verified);
    return queries;
  }

  ConcealerConfig config_;
  std::vector<PlainTuple> tuples_;
  std::unique_ptr<DataProvider> dp_;
  std::unique_ptr<CleartextDb> oracle_;
};

// --- Sessions ---------------------------------------------------------

TEST_F(QueryServiceTest, OneAuthenticationServesManyQueries) {
  auto service = MakeService({});
  auto token =
      service->OpenSession("bob", Proof("bob", Slice("bob-secret", 10)));
  ASSERT_TRUE(token.ok()) << token.status().ToString();
  EXPECT_EQ(service->sessions().authentications(), 1u);

  Query q;
  q.agg = Aggregate::kCount;
  q.key_values = {{4}};
  q.time_lo = 8 * 3600;
  q.time_hi = 9 * 3600;
  for (int i = 0; i < 5; ++i) {
    auto got = service->Execute(*token, q);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->count, oracle_->Execute(q)->count);
  }
  // Still exactly one proof check: queries rode the session.
  EXPECT_EQ(service->sessions().authentications(), 1u);
  EXPECT_EQ(service->sessions().ActiveSessions(), 1u);

  service->CloseSession(*token);
  EXPECT_TRUE(service->Execute(*token, q).status().IsPermissionDenied());
}

TEST_F(QueryServiceTest, SessionExpiresOnTtl) {
  FakeClock clock;
  QueryServiceOptions options;
  options.session_ttl_seconds = 60;
  options.clock = clock.AsClock();
  auto service = MakeService(options);

  auto token =
      service->OpenSession("bob", Proof("bob", Slice("bob-secret", 10)));
  ASSERT_TRUE(token.ok());

  Query q;
  q.agg = Aggregate::kCount;
  q.key_values = {{2}};
  q.time_lo = q.time_hi = 5 * 3600;
  ASSERT_TRUE(service->Execute(*token, q).ok());

  clock.now->store(1000 + 59);  // Still inside the TTL.
  ASSERT_TRUE(service->Execute(*token, q).ok());

  clock.now->store(1000 + 60);  // TTL boundary: expired.
  EXPECT_TRUE(service->Execute(*token, q).status().IsPermissionDenied());
  EXPECT_EQ(service->sessions().ActiveSessions(), 0u);

  // Re-authentication opens a fresh session.
  auto again =
      service->OpenSession("bob", Proof("bob", Slice("bob-secret", 10)));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(service->Execute(*again, q).ok());
}

TEST_F(QueryServiceTest, BadProofsAndTokensRejected) {
  auto service = MakeService({});
  EXPECT_TRUE(service->OpenSession("mallory", Slice("nope"))
                  .status()
                  .IsPermissionDenied());
  EXPECT_TRUE(service->OpenSession("alice", Slice("wrong-secret"))
                  .status()
                  .IsPermissionDenied());
  Query q;
  q.agg = Aggregate::kCount;
  q.key_values = {{1}};
  q.time_lo = q.time_hi = 3600;
  EXPECT_TRUE(
      service->Execute("not-a-token", q).status().IsPermissionDenied());
}

TEST_F(QueryServiceTest, IndividualizedQueriesRestrictedToOwnObservation) {
  auto service = MakeService({});
  auto alice = service->OpenSession(
      "alice", Proof("alice", Slice("alice-secret", 12)));
  auto bob =
      service->OpenSession("bob", Proof("bob", Slice("bob-secret", 10)));
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(bob.ok());

  Query q;
  q.agg = Aggregate::kKeysWithObservation;
  q.observation = tuples_[0].observation;  // Alice's device.
  q.time_lo = 0;
  q.time_hi = 86399;
  EXPECT_TRUE(service->Execute(*alice, q).ok());
  EXPECT_TRUE(service->Execute(*bob, q).status().IsPermissionDenied());
  q.observation = "someone-elses-device";
  EXPECT_TRUE(service->Execute(*alice, q).status().IsPermissionDenied());
}

TEST_F(QueryServiceTest, EncryptedResultsRoundTripUnderSessionKey) {
  auto service = MakeService({});
  const Bytes proof = Proof("alice", Slice("alice-secret", 12));
  auto token = service->OpenSession("alice", proof);
  ASSERT_TRUE(token.ok());

  Query q;
  q.agg = Aggregate::kCount;
  q.key_values = {{6}};
  q.time_lo = 7 * 3600;
  q.time_hi = 9 * 3600;

  auto blob = service->ExecuteEncrypted(*token, q);
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  auto plain = QueryService::DecryptResult(proof, "alice", *blob);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  auto direct = service->Execute(*token, q);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(SerializeQueryResult(*plain), SerializeQueryResult(*direct));

  // A different user's proof cannot decrypt the blob.
  EXPECT_FALSE(QueryService::DecryptResult(
                   Proof("bob", Slice("bob-secret", 10)), "bob", *blob)
                   .ok());
}

// --- Cross-query work cache -------------------------------------------

TEST_F(QueryServiceTest, CacheHitsLeaveAnswersByteIdentical) {
  auto cached = MakeService({});
  QueryServiceOptions no_cache;
  no_cache.enable_work_cache = false;
  auto uncached = MakeService(no_cache);

  auto t1 = cached->OpenSession("bob", Proof("bob", Slice("bob-secret", 10)));
  auto t2 =
      uncached->OpenSession("bob", Proof("bob", Slice("bob-secret", 10)));
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());

  for (const Query& q : MixedQueries()) {
    auto with = cached->Execute(*t1, q);
    auto without = uncached->Execute(*t2, q);
    ASSERT_TRUE(with.ok()) << with.status().ToString();
    ASSERT_TRUE(without.ok()) << without.status().ToString();
    EXPECT_EQ(SerializeQueryResult(*with), SerializeQueryResult(*without));
  }
  EXPECT_GT(cached->cache_stats().trapdoor_entries, 0u);
  auto stats = uncached->cache_stats();
  EXPECT_EQ(stats.trapdoor_hits + stats.trapdoor_misses, 0u);
}

TEST_F(QueryServiceTest, RepeatedQueriesHitTheCache) {
  auto service = MakeService({});
  auto token =
      service->OpenSession("bob", Proof("bob", Slice("bob-secret", 10)));
  ASSERT_TRUE(token.ok());

  Query q;
  q.agg = Aggregate::kCount;
  q.key_values = {{3}};
  q.time_lo = 4 * 3600;
  q.time_hi = 5 * 3600;

  auto first = service->Execute(*token, q);
  ASSERT_TRUE(first.ok());
  const auto cold = service->cache_stats();
  EXPECT_GT(cold.trapdoor_misses, 0u);
  EXPECT_GT(cold.filter_misses, 0u);

  // Same cells + quanta again (another "user" asking the same thing): all
  // enclave DET work is reused, and the answer is byte-identical.
  auto second = service->Execute(*token, q);
  ASSERT_TRUE(second.ok());
  const auto warm = service->cache_stats();
  EXPECT_GT(warm.trapdoor_hits, cold.trapdoor_hits);
  EXPECT_GT(warm.filter_hits, cold.filter_hits);
  EXPECT_EQ(warm.trapdoor_misses, cold.trapdoor_misses);
  EXPECT_EQ(warm.filter_misses, cold.filter_misses);
  EXPECT_EQ(SerializeQueryResult(*first), SerializeQueryResult(*second));
}

TEST_F(QueryServiceTest, ObliviousQueriesBypassTheCache) {
  auto service = MakeService({});
  auto token =
      service->OpenSession("bob", Proof("bob", Slice("bob-secret", 10)));
  ASSERT_TRUE(token.ok());

  Query q;
  q.agg = Aggregate::kCount;
  q.key_values = {{5}};
  q.time_lo = q.time_hi = 6 * 3600;
  q.oblivious = true;
  auto got = service->Execute(*token, q);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->count, oracle_->Execute(q)->count);
  const auto stats = service->cache_stats();
  EXPECT_EQ(stats.trapdoor_hits + stats.trapdoor_misses, 0u);
  EXPECT_EQ(stats.filter_hits + stats.filter_misses, 0u);
}

// --- Concurrency ------------------------------------------------------

// The headline contract: N client threads hammering mixed queries receive
// exactly the bytes a serial replay of the same queries produces.
TEST_F(QueryServiceTest, ConcurrentClientsMatchSerialReplayByteForByte) {
  QueryServiceOptions options;
  options.max_inflight = 8;
  auto service = MakeService(options);

  const std::vector<Query> queries = MixedQueries();

  // Serial replay through one session gives the reference bytes.
  auto ref_token =
      service->OpenSession("bob", Proof("bob", Slice("bob-secret", 10)));
  ASSERT_TRUE(ref_token.ok());
  std::vector<Bytes> expected;
  for (const Query& q : queries) {
    auto got = service->Execute(*ref_token, q);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    expected.push_back(SerializeQueryResult(*got));
  }

  // 8 simulated users, each with their own session, each running the whole
  // mixed workload a few times concurrently.
  constexpr int kThreads = 8;
  constexpr int kRounds = 3;
  std::vector<std::string> tokens;
  for (int i = 0; i < kThreads; ++i) {
    auto token =
        service->OpenSession("bob", Proof("bob", Slice("bob-secret", 10)));
    ASSERT_TRUE(token.ok());
    tokens.push_back(*token);
  }
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        // Interleave differently per thread so cold/warm cache states mix.
        for (size_t i = 0; i < queries.size(); ++i) {
          const size_t qi = (i + t) % queries.size();
          auto got = service->Execute(tokens[t], queries[qi]);
          if (!got.ok()) {
            ++failures;
            continue;
          }
          if (SerializeQueryResult(*got) != expected[qi]) ++mismatches;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(QueryServiceTest, BatchSchedulerMatchesSerialExecution) {
  QueryServiceOptions options;
  options.scheduler_threads = 4;
  options.max_inflight = 2;  // Exercise the admission gate under the pool.
  auto service = MakeService(options);
  auto token =
      service->OpenSession("bob", Proof("bob", Slice("bob-secret", 10)));
  ASSERT_TRUE(token.ok());

  std::vector<QueryService::SessionQuery> batch;
  for (const Query& q : MixedQueries()) batch.push_back({*token, q});
  // One poisoned entry: its failure must stay in its own slot.
  batch.push_back({"bogus-token", batch[0].query});

  auto results = service->ExecuteBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i + 1 < batch.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << i << ": " << results[i].status().ToString();
    auto serial = service->Execute(*token, batch[i].query);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ(SerializeQueryResult(*results[i]),
              SerializeQueryResult(*serial));
  }
  EXPECT_TRUE(results.back().status().IsPermissionDenied());
}

// Dynamic mode (§6) rewrites rows on every query; the service serializes
// those writers behind the epoch lock, so concurrent clients still get
// correct (oracle-matching) counts on every round.
TEST_F(QueryServiceTest, DynamicModeConcurrentWritersStayCorrect) {
  auto service = MakeService({});
  service->set_dynamic_mode(true);
  auto token =
      service->OpenSession("bob", Proof("bob", Slice("bob-secret", 10)));
  ASSERT_TRUE(token.ok());

  Query q;
  q.agg = Aggregate::kCount;
  q.key_values = {{4}};
  q.time_lo = 8 * 3600;
  q.time_hi = 9 * 3600;
  const uint64_t want = oracle_->Execute(q)->count;

  constexpr int kThreads = 4;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 3; ++round) {
        auto got = service->Execute(*token, q);
        if (!got.ok() || got->count != want) ++wrong;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(wrong.load(), 0);
  auto state = service->provider()->epoch_state(0);
  ASSERT_TRUE(state.ok());
  EXPECT_GT((*state)->reenc_counter(), 0u);
}

// --- StripedMap unit coverage -----------------------------------------

TEST(StripedMapTest, GetOrComputeComputesOncePerKey) {
  StripedMap<std::string, int> map(4);
  std::atomic<int> computes{0};
  auto compute = [&] {
    ++computes;
    return 42;
  };
  EXPECT_EQ(*map.GetOrCompute("k", compute), 42);
  EXPECT_EQ(*map.GetOrCompute("k", compute), 42);
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(map.hits(), 1u);
  EXPECT_EQ(map.misses(), 1u);
  EXPECT_EQ(map.size(), 1u);
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
}

TEST(StripedMapTest, EntryCapBoundsSizeAndStaysCorrect) {
  StripedMap<int, int> map(2, /*max_entries=*/8);  // <= 4 per shard.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(*map.GetOrCompute(i, [i] { return i * 3; }), i * 3);
  }
  EXPECT_LE(map.size(), 8u);
  // Flushed entries simply recompute; values stay correct.
  EXPECT_EQ(*map.GetOrCompute(7, [] { return 21; }), 21);
}

TEST(StripedMapTest, ConcurrentMixedKeysConverge) {
  StripedMap<int, int> map(8);
  constexpr int kThreads = 8;
  constexpr int kKeys = 64;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        const int key = (i * 7 + t) % kKeys;
        auto v = map.GetOrCompute(key, [key] { return key * key; });
        if (*v != key * key) ++bad;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(map.size(), static_cast<size_t>(kKeys));
  EXPECT_EQ(map.hits() + map.misses(),
            static_cast<uint64_t>(kThreads * 500));
}

}  // namespace
}  // namespace concealer
