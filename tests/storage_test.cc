// Unit and property tests for the storage engine: B+-tree, row store and
// the encrypted-table facade.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/coding.h"
#include "common/random.h"
#include "storage/bplus_tree.h"
#include "storage/encrypted_table.h"
#include "storage/row_store.h"

namespace concealer {
namespace {

Bytes Key(uint64_t v) {
  Bytes b;
  PutFixed64(&b, v);
  return b;
}

// Big-endian key: lexicographic byte order == numeric order. Used where a
// test asserts ordered iteration.
Bytes OrderedKey(uint64_t v) {
  Bytes b(8);
  for (int i = 0; i < 8; ++i) b[i] = uint8_t(v >> (8 * (7 - i)));
  return b;
}

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Get(Key(1)).ok());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTreeTest, InsertAndGet) {
  BPlusTree tree;
  ASSERT_TRUE(tree.Insert(Key(10), 100).ok());
  ASSERT_TRUE(tree.Insert(Key(20), 200).ok());
  auto v = tree.Get(Key(10));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 100u);
  EXPECT_TRUE(tree.Get(Key(15)).status().IsNotFound());
  EXPECT_TRUE(tree.Contains(Key(20)));
}

TEST(BPlusTreeTest, RejectsDuplicates) {
  BPlusTree tree;
  ASSERT_TRUE(tree.Insert(Key(1), 1).ok());
  EXPECT_TRUE(tree.Insert(Key(1), 2).IsInvalidArgument());
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BPlusTreeTest, SplitsGrowHeight) {
  BPlusTree tree;
  for (uint64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(tree.Insert(Key(i), i).ok());
  }
  EXPECT_EQ(tree.size(), 10000u);
  EXPECT_GT(tree.height(), 1);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  for (uint64_t i = 0; i < 10000; ++i) {
    auto v = tree.Get(Key(i));
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_EQ(*v, i);
  }
}

TEST(BPlusTreeTest, ScanVisitsInOrder) {
  BPlusTree tree;
  Rng rng(3);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 500; ++i) keys.push_back(rng.Next());
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::vector<uint64_t> shuffled = keys;
  rng.Shuffle(&shuffled);
  for (uint64_t k : shuffled) ASSERT_TRUE(tree.Insert(OrderedKey(k), k).ok());

  std::vector<uint64_t> visited;
  tree.Scan([&](Slice, uint64_t v) {
    visited.push_back(v);
    return true;
  });
  EXPECT_EQ(visited, keys);
}

TEST(BPlusTreeTest, ScanEarlyStop) {
  BPlusTree tree;
  for (uint64_t i = 0; i < 100; ++i) ASSERT_TRUE(tree.Insert(Key(i), i).ok());
  int count = 0;
  tree.Scan([&](Slice, uint64_t) { return ++count < 10; });
  EXPECT_EQ(count, 10);
}

// Property test across insertion orders: tree matches a std::map oracle and
// invariants hold.
class BPlusTreePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BPlusTreePropertyTest, MatchesMapOracle) {
  BPlusTree tree;
  std::map<Bytes, uint64_t> oracle;
  Rng rng(GetParam());
  for (int i = 0; i < 3000; ++i) {
    const uint64_t k = rng.Uniform(5000);
    Bytes key = Key(k);
    const bool dup = oracle.count(key) > 0;
    const Status st = tree.Insert(key, k);
    EXPECT_EQ(st.ok(), !dup);
    if (!dup) oracle[key] = k;
  }
  EXPECT_EQ(tree.size(), oracle.size());
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (const auto& [key, val] : oracle) {
    auto v = tree.Get(key);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, val);
  }
  // Absent keys miss.
  for (uint64_t k = 5000; k < 5100; ++k) {
    EXPECT_FALSE(tree.Contains(Key(k)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreePropertyTest,
                         ::testing::Values(1, 7, 42, 1234, 99999));

TEST(BPlusTreeTest, VariableLengthKeys) {
  BPlusTree tree;
  std::vector<std::string> keys = {"", "a", "ab", "abc", "b", "ba", "z"};
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(tree.Insert(Slice(keys[i]), i).ok());
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
  for (size_t i = 0; i < keys.size(); ++i) {
    auto v = tree.Get(Slice(keys[i]));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, i);
  }
}

TEST(RowStoreTest, AppendGetReplace) {
  RowStore store;
  Row r1{{Bytes{1, 2}, Bytes{3}}};
  Row r2{{Bytes{4}, Bytes{5, 6, 7}}};
  EXPECT_EQ(store.Append(r1), 0u);
  EXPECT_EQ(store.Append(r2), 1u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.TotalBytes(), 7u);

  auto got = store.Get(0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->columns, r1.columns);
  EXPECT_TRUE(store.Get(5).status().IsNotFound());
  EXPECT_EQ(store.GetRef(5), nullptr);

  Row r3{{Bytes{9, 9, 9, 9}}};
  ASSERT_TRUE(store.Replace(0, r3).ok());
  EXPECT_EQ(store.GetRef(0)->columns, r3.columns);
  EXPECT_EQ(store.TotalBytes(), 8u);  // 4 (new r1) + 4 (r2).
  EXPECT_TRUE(store.Replace(9, r3).IsNotFound());
}

TEST(EncryptedTableTest, InsertAndFetchByIndexKeys) {
  EncryptedTable table("t", 3, 2);
  for (uint64_t i = 0; i < 100; ++i) {
    Row row{{Bytes{uint8_t(i)}, Bytes{uint8_t(i + 1)}, Key(i)}};
    ASSERT_TRUE(table.Insert(std::move(row)).ok());
  }
  EXPECT_EQ(table.num_rows(), 100u);

  std::vector<Bytes> keys{Key(5), Key(50), Key(500)};  // Last one misses.
  auto rows = table.FetchByIndexKeys(keys);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].columns[0], Bytes{5});
  EXPECT_EQ(rows[1].columns[0], Bytes{50});

  const TableStats& stats = table.stats();
  EXPECT_EQ(stats.index_probes, 3u);
  EXPECT_EQ(stats.index_hits, 2u);
  EXPECT_EQ(stats.rows_fetched, 2u);
  EXPECT_EQ(stats.rows_inserted, 100u);
}

TEST(EncryptedTableTest, RejectsArityMismatch) {
  EncryptedTable table("t", 3, 2);
  Row bad{{Bytes{1}, Key(0)}};
  EXPECT_TRUE(table.Insert(std::move(bad)).IsInvalidArgument());
}

TEST(EncryptedTableTest, RejectsDuplicateIndexKey) {
  EncryptedTable table("t", 2, 1);
  ASSERT_TRUE(table.Insert(Row{{Bytes{1}, Key(7)}}).ok());
  EXPECT_FALSE(table.Insert(Row{{Bytes{2}, Key(7)}}).ok());
}

TEST(EncryptedTableTest, ScanCountsRows) {
  EncryptedTable table("t", 2, 1);
  for (uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(table.Insert(Row{{Bytes{uint8_t(i)}, Key(i)}}).ok());
  }
  uint64_t seen = 0;
  table.Scan([&](const Row&) {
    ++seen;
    return true;
  });
  EXPECT_EQ(seen, 20u);
  EXPECT_EQ(table.stats().rows_scanned, 20u);
}

TEST(EncryptedTableTest, FetchWithIdsAndReplace) {
  EncryptedTable table("t", 2, 1);
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(table.Insert(Row{{Bytes{uint8_t(i)}, Key(i)}}).ok());
  }
  auto pairs = table.FetchWithIds({Key(3)});
  ASSERT_EQ(pairs.size(), 1u);
  Row updated{{Bytes{0xee}, Key(3)}};
  ASSERT_TRUE(table.ReplaceRows({{pairs[0].first, updated}}).ok());
  auto rows = table.FetchByIndexKeys({Key(3)});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].columns[0], Bytes{0xee});
}

TEST(EncryptedTableTest, FetchRefsBorrowsRowsAndCountsBytes) {
  EncryptedTable table("t", 3, 2);
  for (uint64_t i = 0; i < 30; ++i) {
    // Column sizes 1 + 2 + |Key(i)| = 1 + 2 + 8 = 11 bytes per row.
    Row row{{Bytes{uint8_t(i)}, Bytes{uint8_t(i), uint8_t(i)}, Key(i)}};
    ASSERT_TRUE(table.Insert(std::move(row)).ok());
  }
  std::vector<RowRef> refs;
  table.FetchRefs({Key(2), Key(7), Key(999), Key(11)}, &refs);
  ASSERT_EQ(refs.size(), 3u);
  // Borrowed pointers read the stored bytes in place (no copy).
  EXPECT_EQ(refs[0].row->columns[0], Bytes{2});
  EXPECT_EQ(refs[1].row->columns[0], Bytes{7});
  EXPECT_EQ(refs[2].row->columns[0], Bytes{11});
  EXPECT_EQ(refs[1].row_id, 7u);

  const TableStats stats = table.stats();
  EXPECT_EQ(stats.index_probes, 4u);
  EXPECT_EQ(stats.index_hits, 3u);
  EXPECT_EQ(stats.rows_fetched, 3u);
  EXPECT_EQ(stats.bytes_fetched, 3u * 11u);

  // The copying wrappers ride FetchRefs, so they count bytes too.
  (void)table.FetchByIndexKeys({Key(1)});
  EXPECT_EQ(table.stats().bytes_fetched, 4u * 11u);
}

TEST(EncryptedTableTest, BatchInsert) {
  EncryptedTable table("t", 2, 1);
  std::vector<Row> rows;
  for (uint64_t i = 0; i < 50; ++i) {
    rows.push_back(Row{{Bytes{uint8_t(i)}, Key(i)}});
  }
  ASSERT_TRUE(table.InsertBatch(std::move(rows)).ok());
  EXPECT_EQ(table.num_rows(), 50u);
}

}  // namespace
}  // namespace concealer
