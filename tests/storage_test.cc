// Unit and property tests for the storage layer: B+-tree, the pluggable
// engines (in-memory heap and the mmap segment engine) and the
// encrypted-table facade — the table tests run against BOTH engines and
// must behave identically.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>

#include "common/coding.h"
#include "common/random.h"
#include "storage/bplus_tree.h"
#include "storage/encrypted_table.h"
#include "storage/row_store.h"
#include "storage/segment_engine.h"

namespace concealer {
namespace {

Bytes Key(uint64_t v) {
  Bytes b;
  PutFixed64(&b, v);
  return b;
}

// Big-endian key: lexicographic byte order == numeric order. Used where a
// test asserts ordered iteration.
Bytes OrderedKey(uint64_t v) {
  Bytes b(8);
  for (int i = 0; i < 8; ++i) b[i] = uint8_t(v >> (8 * (7 - i)));
  return b;
}

std::string TempDir() {
  char tmpl[] = "/tmp/concealer-storage-test-XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

void RemoveDirRecursive(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
}

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Get(Key(1)).ok());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTreeTest, InsertAndGet) {
  BPlusTree tree;
  ASSERT_TRUE(tree.Insert(Key(10), 100).ok());
  ASSERT_TRUE(tree.Insert(Key(20), 200).ok());
  auto v = tree.Get(Key(10));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 100u);
  EXPECT_TRUE(tree.Get(Key(15)).status().IsNotFound());
  EXPECT_TRUE(tree.Contains(Key(20)));
}

TEST(BPlusTreeTest, RejectsDuplicates) {
  BPlusTree tree;
  ASSERT_TRUE(tree.Insert(Key(1), 1).ok());
  EXPECT_TRUE(tree.Insert(Key(1), 2).IsInvalidArgument());
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BPlusTreeTest, SplitsGrowHeight) {
  BPlusTree tree;
  for (uint64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(tree.Insert(Key(i), i).ok());
  }
  EXPECT_EQ(tree.size(), 10000u);
  EXPECT_GT(tree.height(), 1);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  for (uint64_t i = 0; i < 10000; ++i) {
    auto v = tree.Get(Key(i));
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_EQ(*v, i);
  }
}

TEST(BPlusTreeTest, ScanVisitsInOrder) {
  BPlusTree tree;
  Rng rng(3);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 500; ++i) keys.push_back(rng.Next());
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::vector<uint64_t> shuffled = keys;
  rng.Shuffle(&shuffled);
  for (uint64_t k : shuffled) ASSERT_TRUE(tree.Insert(OrderedKey(k), k).ok());

  std::vector<uint64_t> visited;
  tree.Scan([&](Slice, uint64_t v) {
    visited.push_back(v);
    return true;
  });
  EXPECT_EQ(visited, keys);
}

TEST(BPlusTreeTest, ScanEarlyStop) {
  BPlusTree tree;
  for (uint64_t i = 0; i < 100; ++i) ASSERT_TRUE(tree.Insert(Key(i), i).ok());
  int count = 0;
  tree.Scan([&](Slice, uint64_t) { return ++count < 10; });
  EXPECT_EQ(count, 10);
}

// Property test across insertion orders: tree matches a std::map oracle and
// invariants hold.
class BPlusTreePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BPlusTreePropertyTest, MatchesMapOracle) {
  BPlusTree tree;
  std::map<Bytes, uint64_t> oracle;
  Rng rng(GetParam());
  for (int i = 0; i < 3000; ++i) {
    const uint64_t k = rng.Uniform(5000);
    Bytes key = Key(k);
    const bool dup = oracle.count(key) > 0;
    const Status st = tree.Insert(key, k);
    EXPECT_EQ(st.ok(), !dup);
    if (!dup) oracle[key] = k;
  }
  EXPECT_EQ(tree.size(), oracle.size());
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (const auto& [key, val] : oracle) {
    auto v = tree.Get(key);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, val);
  }
  // Absent keys miss.
  for (uint64_t k = 5000; k < 5100; ++k) {
    EXPECT_FALSE(tree.Contains(Key(k)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreePropertyTest,
                         ::testing::Values(1, 7, 42, 1234, 99999));

TEST(BPlusTreeTest, VariableLengthKeys) {
  BPlusTree tree;
  std::vector<std::string> keys = {"", "a", "ab", "abc", "b", "ba", "z"};
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(tree.Insert(Slice(keys[i]), i).ok());
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
  for (size_t i = 0; i < keys.size(); ++i) {
    auto v = tree.Get(Slice(keys[i]));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, i);
  }
}

// --- BulkGet ---------------------------------------------------------------

// Differential check: runs BulkGet over `probes` (must be sorted ascending,
// duplicates allowed) and compares every slot against the per-key Get path.
// Returns the hit count (duplicates of a present key each count).
size_t DifferentialBulkGet(const BPlusTree& tree,
                           const std::vector<Bytes>& probes) {
  std::vector<Slice> views(probes.size());
  for (size_t i = 0; i < probes.size(); ++i) views[i] = Slice(probes[i]);
  std::vector<uint64_t> ids(probes.size(), 0xdead);
  const size_t hits = tree.BulkGet(views.data(), views.size(), ids.data());
  size_t expect_hits = 0;
  for (size_t i = 0; i < probes.size(); ++i) {
    auto v = tree.Get(probes[i]);
    if (v.ok()) {
      ++expect_hits;
      EXPECT_EQ(ids[i], *v) << "probe " << i;
    } else {
      EXPECT_EQ(ids[i], BPlusTree::kNoMatch) << "probe " << i;
    }
  }
  EXPECT_EQ(hits, expect_hits);
  return hits;
}

TEST(BPlusTreeBulkGetTest, EmptyTreeAndEmptyProbeSet) {
  BPlusTree tree;
  EXPECT_EQ(tree.BulkGet(nullptr, 0, nullptr), 0u);
  std::vector<Bytes> probes{OrderedKey(1), OrderedKey(2)};
  EXPECT_EQ(DifferentialBulkGet(tree, probes), 0u);
}

TEST(BPlusTreeBulkGetTest, SingleLeaf) {
  BPlusTree tree;
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(tree.Insert(OrderedKey(i * 2), i).ok());
  }
  ASSERT_EQ(tree.height(), 1);
  std::vector<Bytes> probes;  // Every even hits, every odd misses.
  for (uint64_t v = 0; v < 22; ++v) probes.push_back(OrderedKey(v));
  EXPECT_EQ(DifferentialBulkGet(tree, probes), 10u);
}

TEST(BPlusTreeBulkGetTest, DuplicateProbes) {
  BPlusTree tree;
  for (uint64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree.Insert(OrderedKey(i * 2), i).ok());
  }
  std::vector<Bytes> probes;
  for (int rep = 0; rep < 3; ++rep) {
    probes.push_back(OrderedKey(100));   // Present.
    probes.push_back(OrderedKey(1001));  // Absent.
  }
  std::sort(probes.begin(), probes.end());
  EXPECT_EQ(DifferentialBulkGet(tree, probes), 3u);
}

TEST(BPlusTreeBulkGetTest, LeafBoundaryAndGapProbes) {
  // Every stored key probed in one batch crosses every leaf boundary of the
  // tree; the interleaved odd keys exercise the miss path in every gap.
  BPlusTree tree;
  const uint64_t kN = 10000;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(tree.Insert(OrderedKey(i * 2), i).ok());
  }
  ASSERT_GT(tree.height(), 1);
  std::vector<Bytes> probes;
  for (uint64_t v = 0; v < 2 * kN + 2; ++v) probes.push_back(OrderedKey(v));
  EXPECT_EQ(DifferentialBulkGet(tree, probes), kN);
}

TEST(BPlusTreeBulkGetTest, ProbesSpanLazilyEmptiedLeaves) {
  // Lazy deletion leaves empty leaves in the chain; a probe batch walking
  // across the deleted range must skip them (regression for the chain-walk
  // re-targeting step).
  BPlusTree tree;
  const uint64_t kN = 5000;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(tree.Insert(OrderedKey(i), i).ok());
  }
  ASSERT_GT(tree.height(), 1);
  // Empty many consecutive leaves in the middle.
  for (uint64_t i = 1000; i < 2000; ++i) {
    ASSERT_TRUE(tree.Delete(OrderedKey(i)).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  std::vector<Bytes> probes;
  for (uint64_t i = 900; i < 2100; ++i) probes.push_back(OrderedKey(i));
  EXPECT_EQ(DifferentialBulkGet(tree, probes), 200u);
  probes.clear();
  for (uint64_t i = 0; i < kN; i += 7) probes.push_back(OrderedKey(i));
  DifferentialBulkGet(tree, probes);
}

// Randomized differential property: random tree (with deletions), random
// probe sets with duplicates, absent keys and boundary values — BulkGet
// must answer exactly as per-key Get on every slot.
class BPlusTreeBulkGetPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BPlusTreeBulkGetPropertyTest, MatchesPerKeyGet) {
  Rng rng(GetParam());
  BPlusTree tree;
  std::vector<uint64_t> inserted;
  for (int i = 0; i < 4000; ++i) {
    const uint64_t k = rng.Uniform(30000);
    if (tree.Insert(OrderedKey(k), k).ok()) inserted.push_back(k);
  }
  // Lazy-delete a random subset so some probes cross emptied entries.
  for (size_t i = 0; i < inserted.size(); i += 3) {
    ASSERT_TRUE(tree.Delete(OrderedKey(inserted[i])).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (const size_t probe_count : {1u, 16u, 256u, 1024u}) {
    std::vector<Bytes> probes;
    probes.reserve(probe_count);
    for (size_t i = 0; i < probe_count; ++i) {
      // Mix of likely-present, certainly-absent, and duplicated probes.
      const uint64_t pick = rng.Uniform(10);
      uint64_t v;
      if (pick < 6 && !inserted.empty()) {
        v = inserted[rng.Uniform(inserted.size())];
      } else if (pick < 9) {
        v = rng.Uniform(40000);  // May or may not be present.
      } else if (!probes.empty()) {
        probes.push_back(probes[rng.Uniform(probes.size())]);  // Duplicate.
        continue;
      } else {
        v = 0;
      }
      probes.push_back(OrderedKey(v));
    }
    std::sort(probes.begin(), probes.end());
    DifferentialBulkGet(tree, probes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreeBulkGetPropertyTest,
                         ::testing::Values(2, 11, 47, 4321, 55555));

// --- Column semantics -----------------------------------------------------

TEST(ColumnTest, OwnedAndBorrowedExposeSameBytes) {
  const Bytes data{1, 2, 3, 4};
  Column owned(data);
  Column borrowed = Column::Borrowed(data.data(), data.size());
  EXPECT_FALSE(owned.borrowed());
  EXPECT_TRUE(borrowed.borrowed());
  EXPECT_EQ(owned, borrowed);
  EXPECT_EQ(borrowed.data(), data.data());  // View, not a copy.
  EXPECT_NE(owned.data(), data.data());
}

TEST(ColumnTest, CopyMaterializesBorrow) {
  const Bytes data{9, 8, 7};
  Column borrowed = Column::Borrowed(data.data(), data.size());
  Column copy = borrowed;  // NOLINT: the copy is the point.
  EXPECT_FALSE(copy.borrowed());
  EXPECT_NE(copy.data(), data.data());
  EXPECT_EQ(copy, borrowed);
  // Moves preserve the mode.
  Column moved = std::move(borrowed);
  EXPECT_TRUE(moved.borrowed());
  EXPECT_EQ(moved.data(), data.data());
}

// --- Engine-parameterized tests -------------------------------------------

enum class EngineKind { kMemory, kMmap };

std::unique_ptr<StorageEngine> MakeEngine(EngineKind kind) {
  StorageOptions options;
  options.engine = kind == EngineKind::kMemory
                       ? StorageOptions::Engine::kMemory
                       : StorageOptions::Engine::kMmap;
  // Empty dir => ephemeral temp directory removed on destruction.
  auto engine = MakeStorageEngine(options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(*engine);
}

class EngineTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(EngineTest, AppendGetReplace) {
  auto store = MakeEngine(GetParam());
  Row r1{{Bytes{1, 2}, Bytes{3}}};
  Row r2{{Bytes{4}, Bytes{5, 6, 7}}};
  auto id1 = store->Append(r1);
  auto id2 = store->Append(r2);
  ASSERT_TRUE(id1.ok() && id2.ok());
  EXPECT_EQ(*id1, 0u);
  EXPECT_EQ(*id2, 1u);
  EXPECT_EQ(store->size(), 2u);
  EXPECT_EQ(store->TotalBytes(), 7u);

  auto got = store->Get(0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->columns, r1.columns);
  EXPECT_TRUE(store->Get(5).status().IsNotFound());
  EXPECT_EQ(store->GetRef(5), nullptr);

  Row r3{{Bytes{9, 9, 9, 9}}};
  ASSERT_TRUE(store->Replace(0, r3).ok());
  EXPECT_EQ(store->GetRef(0)->columns, r3.columns);
  EXPECT_EQ(store->TotalBytes(), 8u);  // 4 (new r1) + 4 (r2).
  EXPECT_TRUE(store->Replace(9, r3).IsNotFound());
}

TEST_P(EngineTest, GenerationBumpsOnEveryMutation) {
  auto store = MakeEngine(GetParam());
  const uint64_t g0 = store->generation();
  ASSERT_TRUE(store->Append(Row{{Bytes{1}}}).ok());
  const uint64_t g1 = store->generation();
  EXPECT_GT(g1, g0);
  ASSERT_TRUE(store->Replace(0, Row{{Bytes{2}}}).ok());
  EXPECT_GT(store->generation(), g1);
}

INSTANTIATE_TEST_SUITE_P(Engines, EngineTest,
                         ::testing::Values(EngineKind::kMemory,
                                           EngineKind::kMmap),
                         [](const auto& info) {
                           return info.param == EngineKind::kMemory
                                      ? "memory"
                                      : "mmap";
                         });

// --- EncryptedTable over both engines -------------------------------------

class EncryptedTableTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  std::unique_ptr<EncryptedTable> MakeTable(size_t num_columns,
                                            size_t index_column) {
    return std::make_unique<EncryptedTable>("t", num_columns, index_column,
                                            MakeEngine(GetParam()));
  }
};

TEST_P(EncryptedTableTest, InsertAndFetchByIndexKeys) {
  auto table = MakeTable(3, 2);
  for (uint64_t i = 0; i < 100; ++i) {
    Row row{{Bytes{uint8_t(i)}, Bytes{uint8_t(i + 1)}, Key(i)}};
    ASSERT_TRUE(table->Insert(std::move(row)).ok());
  }
  EXPECT_EQ(table->num_rows(), 100u);

  std::vector<Bytes> keys{Key(5), Key(50), Key(500)};  // Last one misses.
  auto rows = table->FetchByIndexKeys(keys);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].columns[0], Column(Bytes{5}));
  EXPECT_EQ((*rows)[1].columns[0], Column(Bytes{50}));

  const TableStats stats = table->stats();
  EXPECT_EQ(stats.index_probes, 3u);
  EXPECT_EQ(stats.index_hits, 2u);
  EXPECT_EQ(stats.rows_fetched, 2u);
  EXPECT_EQ(stats.rows_inserted, 100u);
}

TEST_P(EncryptedTableTest, RejectsArityMismatch) {
  auto table = MakeTable(3, 2);
  Row bad{{Bytes{1}, Key(0)}};
  EXPECT_TRUE(table->Insert(std::move(bad)).IsInvalidArgument());
}

TEST_P(EncryptedTableTest, RejectsDuplicateIndexKey) {
  auto table = MakeTable(2, 1);
  ASSERT_TRUE(table->Insert(Row{{Bytes{1}, Key(7)}}).ok());
  EXPECT_FALSE(table->Insert(Row{{Bytes{2}, Key(7)}}).ok());
}

TEST_P(EncryptedTableTest, ScanCountsRows) {
  auto table = MakeTable(2, 1);
  for (uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(table->Insert(Row{{Bytes{uint8_t(i)}, Key(i)}}).ok());
  }
  uint64_t seen = 0;
  ASSERT_TRUE(table->Scan([&](const Row&) {
                     ++seen;
                     return true;
                   })
                  .ok());
  EXPECT_EQ(seen, 20u);
  EXPECT_EQ(table->stats().rows_scanned, 20u);
}

TEST_P(EncryptedTableTest, FetchWithIdsAndReplace) {
  auto table = MakeTable(2, 1);
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(table->Insert(Row{{Bytes{uint8_t(i)}, Key(i)}}).ok());
  }
  auto pairs = table->FetchWithIds({Key(3)});
  ASSERT_TRUE(pairs.ok());
  ASSERT_EQ(pairs->size(), 1u);
  Row updated{{Bytes{0xee}, Key(3)}};
  ASSERT_TRUE(table->ReplaceRows({{(*pairs)[0].first, updated}}).ok());
  auto rows = table->FetchByIndexKeys({Key(3)});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].columns[0], Column(Bytes{0xee}));
}

TEST_P(EncryptedTableTest, FetchRefsBorrowsRowsAndCountsBytes) {
  auto table = MakeTable(3, 2);
  for (uint64_t i = 0; i < 30; ++i) {
    // Column sizes 1 + 2 + |Key(i)| = 1 + 2 + 8 = 11 bytes per row.
    Row row{{Bytes{uint8_t(i)}, Bytes{uint8_t(i), uint8_t(i)}, Key(i)}};
    ASSERT_TRUE(table->Insert(std::move(row)).ok());
  }
  std::vector<RowRef> refs;
  ASSERT_TRUE(table->FetchRefs({Key(2), Key(7), Key(999), Key(11)}, &refs).ok());
  ASSERT_EQ(refs.size(), 3u);
  // Borrowed pointers read the stored bytes in place (no copy).
  EXPECT_EQ(refs[0].get()->columns[0], Column(Bytes{2}));
  EXPECT_EQ(refs[1].get()->columns[0], Column(Bytes{7}));
  EXPECT_EQ(refs[2].get()->columns[0], Column(Bytes{11}));
  EXPECT_EQ(refs[1].row_id, 7u);
  for (const RowRef& ref : refs) EXPECT_FALSE(ref.stale());

  if (GetParam() == EngineKind::kMmap) {
    // Zero-copy really means the mapped region: every borrowed column
    // points into a segment file, not the heap.
    const EncryptedTable& ctable = *table;
    const auto* engine = static_cast<const SegmentEngine*>(&ctable.engine());
    for (const RowRef& ref : refs) {
      for (const Column& col : ref.get()->columns) {
        EXPECT_TRUE(col.borrowed());
        EXPECT_TRUE(engine->IsMapped(col.data()));
      }
    }
  }

  const TableStats stats = table->stats();
  EXPECT_EQ(stats.index_probes, 4u);
  EXPECT_EQ(stats.index_hits, 3u);
  EXPECT_EQ(stats.rows_fetched, 3u);
  EXPECT_EQ(stats.bytes_fetched, 3u * 11u);

  // The copying wrappers ride FetchRefs, so they count bytes too.
  (void)table->FetchByIndexKeys({Key(1)});
  EXPECT_EQ(table->stats().bytes_fetched, 4u * 11u);
}

TEST_P(EncryptedTableTest, BulkAndPerKeyFetchRefsAreIdentical) {
  // The bulk index path must be observationally identical to the per-key
  // loop: same refs, same order, same stats — on both engines. The probe
  // set is shuffled (FetchRefs sorts internally via a permutation) and
  // mixes hits, misses and duplicates.
  auto table = MakeTable(2, 1);
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        table->Insert(Row{{Bytes{uint8_t(i), uint8_t(i >> 8)}, Key(i * 3)}})
            .ok());
  }
  Rng rng(77);
  std::vector<Bytes> keys;
  for (int i = 0; i < 300; ++i) keys.push_back(Key(rng.Uniform(2000)));
  keys.push_back(keys[0]);  // Guaranteed duplicate probe.
  rng.Shuffle(&keys);

  table->ResetStats();
  SetBulkIndexProbing(true);
  std::vector<RowRef> bulk;
  ASSERT_TRUE(table->FetchRefs(keys, &bulk).ok());
  const TableStats bulk_stats = table->stats();

  table->ResetStats();
  SetBulkIndexProbing(false);
  std::vector<RowRef> per_key;
  ASSERT_TRUE(table->FetchRefs(keys, &per_key).ok());
  const TableStats per_key_stats = table->stats();
  SetBulkIndexProbing(true);  // Restore the process-wide default.

  ASSERT_EQ(bulk.size(), per_key.size());
  ASSERT_GT(bulk.size(), 0u);
  for (size_t i = 0; i < bulk.size(); ++i) {
    EXPECT_EQ(bulk[i].row_id, per_key[i].row_id) << i;
    EXPECT_EQ(bulk[i].row, per_key[i].row) << i;  // Same borrowed pointer.
  }
  EXPECT_EQ(bulk_stats.index_probes, per_key_stats.index_probes);
  EXPECT_EQ(bulk_stats.index_hits, per_key_stats.index_hits);
  EXPECT_EQ(bulk_stats.rows_fetched, per_key_stats.rows_fetched);
  EXPECT_EQ(bulk_stats.bytes_fetched, per_key_stats.bytes_fetched);
}

TEST_P(EncryptedTableTest, RowRefStaleAfterMutation) {
  auto table = MakeTable(2, 1);
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(table->Insert(Row{{Bytes{uint8_t(i)}, Key(i)}}).ok());
  }
  std::vector<RowRef> refs;
  ASSERT_TRUE(table->FetchRefs({Key(1)}, &refs).ok());
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_FALSE(refs[0].stale());
  // Any engine mutation invalidates the borrow — the documented rule the
  // generation counter now enforces.
  ASSERT_TRUE(table->Insert(Row{{Bytes{42}, Key(42)}}).ok());
  EXPECT_TRUE(refs[0].stale());
#ifndef NDEBUG
  EXPECT_DEATH((void)refs[0].get(), "RowRef read after invalidation");
#endif
}

TEST_P(EncryptedTableTest, BatchInsert) {
  auto table = MakeTable(2, 1);
  std::vector<Row> rows;
  for (uint64_t i = 0; i < 50; ++i) {
    rows.push_back(Row{{Bytes{uint8_t(i)}, Key(i)}});
  }
  ASSERT_TRUE(table->InsertBatch(std::move(rows)).ok());
  EXPECT_EQ(table->num_rows(), 50u);
}

INSTANTIATE_TEST_SUITE_P(Engines, EncryptedTableTest,
                         ::testing::Values(EngineKind::kMemory,
                                           EngineKind::kMmap),
                         [](const auto& info) {
                           return info.param == EngineKind::kMemory
                                      ? "memory"
                                      : "mmap";
                         });

// --- SegmentEngine persistence --------------------------------------------

std::unique_ptr<StorageEngine> OpenSegEngine(const std::string& dir) {
  auto engine =
      SegmentEngine::Open(SegmentEngine::Options{dir, 1 << 20, false});
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(*engine);
}

Row TestRow(uint64_t i) {
  return Row{{Bytes{uint8_t(i), uint8_t(i >> 8)}, Key(i), Key(i * 31)}};
}

TEST(SegmentEngineTest, RowsSurviveReopen) {
  const std::string dir = TempDir();
  {
    SegmentEngine::Options options;
    options.dir = dir;
    options.segment_bytes = 4096;  // Force several segments.
    auto engine = SegmentEngine::Open(options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    for (uint64_t i = 0; i < 200; ++i) {
      ASSERT_TRUE((*engine)->Append(TestRow(i)).ok());
    }
    ASSERT_TRUE((*engine)->Replace(17, TestRow(9999)).ok());
    EXPECT_GT((*engine)->NumSegments(), 1u);
  }  // Destructor seals + truncates.
  {
    SegmentEngine::Options options;
    options.dir = dir;
    auto engine = SegmentEngine::Open(options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    EXPECT_EQ((*engine)->size(), 200u);
    for (uint64_t i = 0; i < 200; ++i) {
      const Row* row = (*engine)->GetRef(i);
      ASSERT_NE(row, nullptr) << i;
      const Row want = i == 17 ? TestRow(9999) : TestRow(i);
      EXPECT_EQ(row->columns, want.columns) << i;
    }
  }
  RemoveDirRecursive(dir);
}

TEST(SegmentEngineTest, SealAlignsEpochsToSegments) {
  const std::string dir = TempDir();
  SegmentEngine::Options options;
  options.dir = dir;
  auto engine = SegmentEngine::Open(options);
  ASSERT_TRUE(engine.ok());
  // "Epoch 0": rows 0-9 in segment 0; sealed; "epoch 1": rows 10-19 in 1.
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE((*engine)->Append(TestRow(i)).ok());
  }
  ASSERT_TRUE((*engine)->SealSegment().ok());
  EXPECT_EQ((*engine)->NumSegments(), 1u);
  for (uint64_t i = 10; i < 20; ++i) {
    ASSERT_TRUE((*engine)->Append(TestRow(i)).ok());
  }
  ASSERT_TRUE((*engine)->SealSegment().ok());
  EXPECT_EQ((*engine)->NumSegments(), 2u);

  // Evict segment 0: its rows disappear from GetRef, segment 1's stay.
  ASSERT_TRUE((*engine)->EvictSegments(0, 0).ok());
  EXPECT_FALSE((*engine)->SegmentsResident(0, 0));
  EXPECT_TRUE((*engine)->SegmentsResident(1, 1));
  EXPECT_EQ((*engine)->GetRef(3), nullptr);
  ASSERT_NE((*engine)->GetRef(13), nullptr);
  EXPECT_TRUE((*engine)->Get(3).status().IsFailedPrecondition());

  // Load it back: byte-identical rows.
  ASSERT_TRUE((*engine)->LoadSegments(0, 0).ok());
  for (uint64_t i = 0; i < 20; ++i) {
    const Row* row = (*engine)->GetRef(i);
    ASSERT_NE(row, nullptr) << i;
    EXPECT_EQ(row->columns, TestRow(i).columns) << i;
  }
  engine->reset();
  RemoveDirRecursive(dir);
}

TEST(SegmentEngineTest, EvictionSparesRowsReplacedIntoNewerSegments) {
  const std::string dir = TempDir();
  SegmentEngine::Options options;
  options.dir = dir;
  auto engine = SegmentEngine::Open(options);
  ASSERT_TRUE(engine.ok());
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE((*engine)->Append(TestRow(i)).ok());
  }
  ASSERT_TRUE((*engine)->SealSegment().ok());
  // Row 4's latest version lands in the (new) active segment.
  ASSERT_TRUE((*engine)->Replace(4, TestRow(444)).ok());
  ASSERT_TRUE((*engine)->SealSegment().ok());

  ASSERT_TRUE((*engine)->EvictSegments(0, 0).ok());
  EXPECT_EQ((*engine)->GetRef(3), nullptr);     // Lives in segment 0.
  ASSERT_NE((*engine)->GetRef(4), nullptr);     // Moved to segment 1.
  EXPECT_EQ((*engine)->GetRef(4)->columns, TestRow(444).columns);

  // Loading segment 0 must not resurrect row 4's old bytes.
  ASSERT_TRUE((*engine)->LoadSegments(0, 0).ok());
  EXPECT_EQ((*engine)->GetRef(4)->columns, TestRow(444).columns);
  EXPECT_EQ((*engine)->GetRef(3)->columns, TestRow(3).columns);
  engine->reset();
  RemoveDirRecursive(dir);
}

TEST(SegmentEngineTest, TornFinalRecordIsTruncatedOnRecovery) {
  const std::string dir = TempDir();
  {
    SegmentEngine::Options options;
    options.dir = dir;
    auto engine = SegmentEngine::Open(options);
    ASSERT_TRUE(engine.ok());
    for (uint64_t i = 0; i < 5; ++i) {
      ASSERT_TRUE((*engine)->Append(TestRow(i)).ok());
    }
  }
  // Simulate a crash mid-append: flip a byte inside the last record.
  const std::string seg0 = dir + "/seg-000000.seg";
  std::FILE* f = std::fopen(seg0.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, -3, SEEK_END);
  std::fputc(0xff, f);
  std::fclose(f);
  {
    SegmentEngine::Options options;
    options.dir = dir;
    auto engine = SegmentEngine::Open(options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    // The torn record is dropped; everything before it survives.
    EXPECT_EQ((*engine)->size(), 4u);
    for (uint64_t i = 0; i < 4; ++i) {
      ASSERT_NE((*engine)->GetRef(i), nullptr);
      EXPECT_EQ((*engine)->GetRef(i)->columns, TestRow(i).columns);
    }
  }
  RemoveDirRecursive(dir);
}

TEST(SegmentEngineTest, CorruptionBeforeFinalSegmentFailsOpenIntact) {
  const std::string dir = TempDir();
  {
    SegmentEngine::Options options;
    options.dir = dir;
    auto engine = SegmentEngine::Open(options);
    ASSERT_TRUE(engine.ok());
    for (uint64_t i = 0; i < 5; ++i) {
      ASSERT_TRUE((*engine)->Append(TestRow(i)).ok());
    }
    ASSERT_TRUE((*engine)->SealSegment().ok());
    for (uint64_t i = 5; i < 10; ++i) {
      ASSERT_TRUE((*engine)->Append(TestRow(i)).ok());
    }
  }
  // Flip a byte inside a record of segment 0 — committed, msync'd data in
  // a NON-final segment. That is real damage, not a torn tail: Open must
  // refuse, and must not truncate a single byte.
  const std::string seg0 = dir + "/seg-000000.seg";
  struct stat before;
  ASSERT_EQ(::stat(seg0.c_str(), &before), 0);
  std::FILE* f = std::fopen(seg0.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, -3, SEEK_END), 0);
  const int orig = std::fgetc(f);
  ASSERT_NE(orig, EOF);
  ASSERT_EQ(std::fseek(f, -3, SEEK_END), 0);
  std::fputc(orig ^ 0xff, f);
  std::fclose(f);
  {
    SegmentEngine::Options options;
    options.dir = dir;
    auto engine = SegmentEngine::Open(options);
    ASSERT_FALSE(engine.ok());
    EXPECT_TRUE(engine.status().IsCorruption()) << engine.status().ToString();
  }
  struct stat after;
  ASSERT_EQ(::stat(seg0.c_str(), &after), 0);
  EXPECT_EQ(after.st_size, before.st_size);
  // Proof no committed byte was destroyed: repairing the flipped byte
  // brings every row straight back.
  f = std::fopen(seg0.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, -3, SEEK_END), 0);
  std::fputc(orig, f);
  std::fclose(f);
  {
    SegmentEngine::Options options;
    options.dir = dir;
    auto engine = SegmentEngine::Open(options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    EXPECT_EQ((*engine)->size(), 10u);
    for (uint64_t i = 0; i < 10; ++i) {
      ASSERT_NE((*engine)->GetRef(i), nullptr) << i;
      EXPECT_EQ((*engine)->GetRef(i)->columns, TestRow(i).columns) << i;
    }
  }
  RemoveDirRecursive(dir);
}

TEST(SegmentEngineTest, TornTailInFinalOfSeveralSegmentsRecovers) {
  const std::string dir = TempDir();
  {
    SegmentEngine::Options options;
    options.dir = dir;
    auto engine = SegmentEngine::Open(options);
    ASSERT_TRUE(engine.ok());
    for (uint64_t i = 0; i < 5; ++i) {
      ASSERT_TRUE((*engine)->Append(TestRow(i)).ok());
    }
    ASSERT_TRUE((*engine)->SealSegment().ok());
    for (uint64_t i = 5; i < 10; ++i) {
      ASSERT_TRUE((*engine)->Append(TestRow(i)).ok());
    }
  }
  // Corrupt the last record of the FINAL segment: a genuine torn tail.
  const std::string seg1 = dir + "/seg-000001.seg";
  std::FILE* f = std::fopen(seg1.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, -3, SEEK_END), 0);
  std::fputc(0xff, f);
  std::fclose(f);
  {
    SegmentEngine::Options options;
    options.dir = dir;
    auto engine = SegmentEngine::Open(options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    // Only the torn record is dropped; segment 0 is untouched.
    EXPECT_EQ((*engine)->size(), 9u);
    for (uint64_t i = 0; i < 9; ++i) {
      ASSERT_NE((*engine)->GetRef(i), nullptr) << i;
      EXPECT_EQ((*engine)->GetRef(i)->columns, TestRow(i).columns) << i;
    }
  }
  RemoveDirRecursive(dir);
}

TEST(SegmentEngineTest, FailedReloadLeavesSegmentEvicted) {
  const std::string dir = TempDir();
  {
    SegmentEngine::Options options;
    options.dir = dir;
    auto engine = SegmentEngine::Open(options);
    ASSERT_TRUE(engine.ok());
    for (uint64_t i = 0; i < 5; ++i) {
      ASSERT_TRUE((*engine)->Append(TestRow(i)).ok());
    }
    ASSERT_TRUE((*engine)->SealSegment().ok());
    ASSERT_TRUE((*engine)->EvictSegments(0, 0).ok());

    // Corrupt the evicted file on disk (size preserved, checksum broken).
    const std::string seg0 = dir + "/seg-000000.seg";
    std::FILE* f = std::fopen(seg0.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, -3, SEEK_END), 0);
    const int orig = std::fgetc(f);
    ASSERT_NE(orig, EOF);
    ASSERT_EQ(std::fseek(f, -3, SEEK_END), 0);
    std::fputc(orig ^ 0xff, f);
    std::fclose(f);

    // The reload must fail AND leave the segment evicted — "resident"
    // with cleared row columns would hand the query path empty vectors.
    Status st = (*engine)->LoadSegments(0, 0);
    EXPECT_TRUE(st.IsCorruption()) << st.ToString();
    EXPECT_FALSE((*engine)->SegmentsResident(0, 0));
    EXPECT_EQ((*engine)->GetRef(2), nullptr);

    // Repairing the file lets a retry succeed with the original bytes.
    f = std::fopen(seg0.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, -3, SEEK_END), 0);
    std::fputc(orig, f);
    std::fclose(f);
    ASSERT_TRUE((*engine)->LoadSegments(0, 0).ok());
    for (uint64_t i = 0; i < 5; ++i) {
      ASSERT_NE((*engine)->GetRef(i), nullptr) << i;
      EXPECT_EQ((*engine)->GetRef(i)->columns, TestRow(i).columns) << i;
    }
  }
  RemoveDirRecursive(dir);
}

TEST(SegmentEngineTest, ScanFailsOnEvictedSegment) {
  const std::string dir = TempDir();
  {
    auto table =
        std::make_unique<EncryptedTable>("t", 2, 1, OpenSegEngine(dir));
    for (uint64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(table->Insert(Row{{Bytes{uint8_t(i)}, Key(i)}}).ok());
    }
    ASSERT_TRUE(table->engine()->SealSegment().ok());
    ASSERT_TRUE(table->engine()->EvictSegments(0, 0).ok());
    // The Opaque-baseline full scan must fail loudly rather than return a
    // partial answer — same residency guard as the fetch path.
    uint64_t seen = 0;
    Status st = table->Scan([&](const Row&) {
      ++seen;
      return true;
    });
    EXPECT_TRUE(st.IsFailedPrecondition()) << st.ToString();
    EXPECT_EQ(seen, 0u);
    ASSERT_TRUE(table->engine()->LoadSegments(0, 0).ok());
    st = table->Scan([&](const Row&) {
      ++seen;
      return true;
    });
    EXPECT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(seen, 10u);
  }
  RemoveDirRecursive(dir);
}

TEST(SegmentEngineTest, IndexSidecarRoundTripsAndDetectsStaleness) {
  const std::string dir = TempDir();
  const std::string sidecar = dir + "/index.sidecar";
  {
    auto table = std::make_unique<EncryptedTable>(
        "t", 2, 1, OpenSegEngine(dir));
    for (uint64_t i = 0; i < 40; ++i) {
      ASSERT_TRUE(table->Insert(Row{{Bytes{uint8_t(i)}, Key(i)}}).ok());
    }
    ASSERT_TRUE(table->PersistIndex(sidecar).ok());
  }
  {
    // Fresh sidecar: recovery uses it and answers correctly.
    auto table = std::make_unique<EncryptedTable>(
        "t", 2, 1, OpenSegEngine(dir));
    ASSERT_TRUE(table->RecoverIndex(sidecar).ok());
    auto rows = table->FetchByIndexKeys({Key(7)});
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->size(), 1u);
    EXPECT_EQ((*rows)[0].columns[0], Column(Bytes{7}));
    // Append one more row WITHOUT refreshing the sidecar: the stamp is now
    // stale and the next recovery must rebuild from rows instead.
    ASSERT_TRUE(table->Insert(Row{{Bytes{0xaa}, Key(100)}}).ok());
  }
  {
    auto table = std::make_unique<EncryptedTable>(
        "t", 2, 1, OpenSegEngine(dir));
    ASSERT_TRUE(table->RecoverIndex(sidecar).ok());  // Stale -> rebuild.
    auto rows = table->FetchByIndexKeys({Key(100), Key(7)});
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->size(), 2u);
    EXPECT_EQ((*rows)[0].columns[0], Column(Bytes{0xaa}));
  }
  RemoveDirRecursive(dir);
}

// --- Segment compaction ----------------------------------------------------
// Dynamic-mode churn (§6 rewrites) strands dead record versions in sealed
// segments; Compact rewrites the survivors into the active segment and
// swaps the victim for a purge-marker tombstone under the existing
// generation/borrow-stamp protocol.

TEST(SegmentCompactionTest, RewritesLiveRowsAndReclaims) {
  const std::string dir = TempDir();
  SegmentEngine::Options options;
  options.dir = dir;
  options.segment_bytes = 4096;  // Force several sealed segments.
  auto engine = SegmentEngine::Open(options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  for (uint64_t i = 0; i < 120; ++i) {
    ASSERT_TRUE((*engine)->Append(TestRow(i)).ok());
  }
  // Rewrite most early rows: their old records (in sealed segments) are
  // dead weight now.
  for (uint64_t i = 0; i < 80; ++i) {
    ASSERT_TRUE((*engine)->Replace(i, TestRow(1000 + i)).ok());
  }
  ASSERT_TRUE((*engine)->SealSegment().ok());
  ASSERT_GT((*engine)->DeadBytes(), 0u);
  const uint64_t disk_before = (*engine)->DiskBytes();
  const uint64_t gen_before = (*engine)->generation();

  auto reclaimed = (*engine)->Compact(0.3);
  ASSERT_TRUE(reclaimed.ok()) << reclaimed.status().ToString();
  EXPECT_GT(*reclaimed, 0u);
  EXPECT_LT((*engine)->DiskBytes(), disk_before);
  // Compaction invalidates outstanding borrows like any other mutation.
  EXPECT_GT((*engine)->generation(), gen_before);

  // Every row still reads back its LATEST bytes.
  for (uint64_t i = 0; i < 120; ++i) {
    const Row* row = (*engine)->GetRef(i);
    ASSERT_NE(row, nullptr) << i;
    const Row want = i < 80 ? TestRow(1000 + i) : TestRow(i);
    EXPECT_EQ(row->columns, want.columns) << i;
  }
  // A second pass finds nothing worth rewriting.
  auto again = (*engine)->Compact(0.3);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
  engine->reset();
  RemoveDirRecursive(dir);
}

TEST(SegmentCompactionTest, BorrowsGoStaleAcrossCompaction) {
  const std::string dir = TempDir();
  auto table = std::make_unique<EncryptedTable>("t", 2, 1, OpenSegEngine(dir));
  for (uint64_t i = 0; i < 60; ++i) {
    ASSERT_TRUE(table->Insert(Row{{Bytes{uint8_t(i)}, Key(i)}}).ok());
  }
  for (uint64_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        table->engine()->Replace(i, Row{{Bytes{0xbb}, Key(i)}}).ok());
  }
  ASSERT_TRUE(table->engine()->SealSegment().ok());

  std::vector<RowRef> refs;
  ASSERT_TRUE(table->FetchRefs({Key(45)}, &refs).ok());
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_FALSE(refs[0].stale());

  auto reclaimed = table->engine()->Compact(0.3);
  ASSERT_TRUE(reclaimed.ok());
  ASSERT_GT(*reclaimed, 0u);
  // The borrow protocol catches the rewrite — a reader that held a ref
  // across the compaction sees it stale instead of reading a stale (or
  // unmapped) record.
  EXPECT_TRUE(refs[0].stale());
  refs.clear();
  ASSERT_TRUE(table->FetchRefs({Key(45)}, &refs).ok());
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_FALSE(refs[0].stale());
  EXPECT_EQ(refs[0].get()->columns[0], Column(Bytes{45}));
  RemoveDirRecursive(dir);
}

TEST(SegmentCompactionTest, ChurnKeepsDeadBytesBounded) {
  const std::string dir = TempDir();
  SegmentEngine::Options options;
  options.dir = dir;
  options.segment_bytes = 4096;
  auto engine = SegmentEngine::Open(options);
  ASSERT_TRUE(engine.ok());
  for (uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE((*engine)->Append(TestRow(i)).ok());
  }
  // Sustained churn with periodic compaction: the dead-byte ratio must
  // stay bounded instead of growing with the number of rounds.
  for (int round = 0; round < 12; ++round) {
    for (uint64_t i = 0; i < 64; i += 2) {
      ASSERT_TRUE(
          (*engine)->Replace(i, TestRow(64 * (round + 1) + i)).ok());
    }
    ASSERT_TRUE((*engine)->SealSegment().ok());
    ASSERT_TRUE((*engine)->Compact(0.4).ok()) << "round " << round;
  }
  const uint64_t dead = (*engine)->DeadBytes();
  const uint64_t disk = (*engine)->DiskBytes();
  ASSERT_GT(disk, 0u);
  EXPECT_LT(static_cast<double>(dead), 0.6 * static_cast<double>(disk))
      << "dead=" << dead << " disk=" << disk;
  for (uint64_t i = 0; i < 64; ++i) {
    const Row* row = (*engine)->GetRef(i);
    ASSERT_NE(row, nullptr) << i;
    const Row want = (i % 2) == 0 ? TestRow(64 * 12 + i) : TestRow(i);
    EXPECT_EQ(row->columns, want.columns) << i;
  }
  engine->reset();
  RemoveDirRecursive(dir);
}

TEST(SegmentCompactionTest, EvictedSegmentIsSkipped) {
  const std::string dir = TempDir();
  SegmentEngine::Options options;
  options.dir = dir;
  auto engine = SegmentEngine::Open(options);
  ASSERT_TRUE(engine.ok());
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE((*engine)->Append(TestRow(i)).ok());
  }
  ASSERT_TRUE((*engine)->SealSegment().ok());
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE((*engine)->Replace(i, TestRow(500 + i)).ok());
  }
  ASSERT_TRUE((*engine)->SealSegment().ok());
  ASSERT_GT((*engine)->DeadBytes(), 0u);

  // Evict the mostly-dead segment 0: compaction must leave it alone (its
  // rows are not readable, so they cannot be rewritten).
  ASSERT_TRUE((*engine)->EvictSegments(0, 0).ok());
  auto reclaimed = (*engine)->Compact(0.3);
  ASSERT_TRUE(reclaimed.ok());
  EXPECT_EQ(*reclaimed, 0u);
  EXPECT_FALSE((*engine)->SegmentsResident(0, 0));

  // Reloaded, the same pass reclaims it.
  ASSERT_TRUE((*engine)->LoadSegments(0, 0).ok());
  reclaimed = (*engine)->Compact(0.3);
  ASSERT_TRUE(reclaimed.ok());
  EXPECT_GT(*reclaimed, 0u);
  for (uint64_t i = 0; i < 10; ++i) {
    const Row* row = (*engine)->GetRef(i);
    ASSERT_NE(row, nullptr) << i;
    const Row want = i < 8 ? TestRow(500 + i) : TestRow(i);
    EXPECT_EQ(row->columns, want.columns) << i;
  }
  engine->reset();
  RemoveDirRecursive(dir);
}

TEST(SegmentCompactionTest, CompactedStateSurvivesReopen) {
  const std::string dir = TempDir();
  uint64_t durable = 0;
  uint64_t disk = 0;
  {
    SegmentEngine::Options options;
    options.dir = dir;
    options.segment_bytes = 4096;
    auto engine = SegmentEngine::Open(options);
    ASSERT_TRUE(engine.ok());
    for (uint64_t i = 0; i < 120; ++i) {
      ASSERT_TRUE((*engine)->Append(TestRow(i)).ok());
    }
    for (uint64_t i = 0; i < 80; ++i) {
      ASSERT_TRUE((*engine)->Replace(i, TestRow(2000 + i)).ok());
    }
    ASSERT_TRUE((*engine)->SealSegment().ok());
    auto reclaimed = (*engine)->Compact(0.3);
    ASSERT_TRUE(reclaimed.ok());
    ASSERT_GT(*reclaimed, 0u);
    durable = (*engine)->durable_generation();
    disk = (*engine)->DiskBytes();
  }  // Destructor seals + truncates.
  {
    SegmentEngine::Options options;
    options.dir = dir;
    auto engine = SegmentEngine::Open(options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    // The purge markers re-count the compacted-away records, so the
    // durable generation — the index sidecar's freshness stamp — is
    // byte-stable across the restart.
    EXPECT_EQ((*engine)->durable_generation(), durable);
    EXPECT_EQ((*engine)->size(), 120u);
    EXPECT_LE((*engine)->DiskBytes(), disk);
    for (uint64_t i = 0; i < 120; ++i) {
      const Row* row = (*engine)->GetRef(i);
      ASSERT_NE(row, nullptr) << i;
      const Row want = i < 80 ? TestRow(2000 + i) : TestRow(i);
      EXPECT_EQ(row->columns, want.columns) << i;
    }
  }
  RemoveDirRecursive(dir);
}

}  // namespace
}  // namespace concealer
