// TenantRegistry tests: routing and per-tenant isolation (sessions, key
// material, work caches), cross-tenant ciphertext rejection, DropTenant
// under concurrent traffic to other tenants, restart recovery of every
// tenant directory with per-tenant status surfacing, and the shared
// hot-epoch budget stealing cold tenants' residency slots.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <vector>

#include "concealer/data_provider.h"
#include "concealer/wire.h"
#include "enclave/registry.h"
#include "service/tenant_registry.h"
#include "workload/wifi_generator.h"

namespace concealer {
namespace {

std::string TempDir() {
  char tmpl[] = "/tmp/concealer-tenant-test-XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

void RemoveDirRecursive(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
}

bool DirExists(const std::string& dir) {
  struct stat st;
  return ::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

ConcealerConfig TenantTestConfig() {
  ConcealerConfig config;
  config.key_buckets = {8};
  config.key_domains = {20};
  config.time_buckets = 24;
  config.num_cell_ids = 40;
  config.epoch_seconds = 86400;
  config.time_quantum = 60;
  config.make_hash_chains = true;
  return config;
}

/// Everything the DP side holds for one tenant: its own enclave secret,
/// its own user base, its own data. `seed` differentiates all three.
struct TenantFixture {
  std::string id;
  ConcealerConfig config;
  std::unique_ptr<DataProvider> dp;
  std::vector<PlainTuple> tuples;
  std::vector<EncryptedEpoch> epochs;
  Bytes user_secret;
};

TenantFixture MakeTenant(const std::string& id, uint8_t seed,
                         uint64_t days = 2) {
  TenantFixture t;
  t.id = id;
  t.config = TenantTestConfig();
  t.dp = std::make_unique<DataProvider>(t.config, Bytes(32, seed));
  const std::string secret = "secret-" + id;
  t.user_secret = Bytes(secret.begin(), secret.end());
  EXPECT_TRUE(t.dp->RegisterUser("alice", t.user_secret, "").ok());
  WifiConfig wifi;
  wifi.num_access_points = 20;
  wifi.num_devices = 50;
  wifi.start_time = 0;
  wifi.duration_seconds = days * 86400;
  wifi.total_rows = 1200 * days;
  wifi.seed = seed;
  t.tuples = WifiGenerator(wifi).Generate();
  auto epochs = t.dp->EncryptAll(t.tuples);
  EXPECT_TRUE(epochs.ok());
  t.epochs = std::move(*epochs);
  return t;
}

Bytes AliceProof(const TenantFixture& t) {
  return Registry::MakeProof(t.user_secret, "alice");
}

void Provision(TenantRegistry* registry, const TenantFixture& t) {
  ASSERT_TRUE(
      registry->CreateTenant(t.id, t.config, t.dp->shared_secret()).ok());
  ASSERT_TRUE(registry->LoadRegistry(t.id, t.dp->EncryptedRegistry()).ok());
  for (const auto& e : t.epochs) {
    ASSERT_TRUE(registry->IngestEpoch(t.id, e).ok());
  }
}

/// Mixed point/range/top-k workload over the 2-day span.
std::vector<Query> TenantQueries() {
  std::vector<Query> queries;
  for (uint64_t i = 0; i < 4; ++i) {
    Query point;
    point.agg = Aggregate::kCount;
    point.key_values = {{(i * 5) % 20}};
    point.time_lo = point.time_hi = (i * 11 + 3) * 3600;
    queries.push_back(point);
  }
  Query range;
  range.agg = Aggregate::kCount;
  range.key_values = {{6}};
  range.time_lo = 8 * 3600;
  range.time_hi = 11 * 3600;
  queries.push_back(range);
  range.method = RangeMethod::kEBPB;
  range.time_lo = 86400 + 7 * 3600;
  range.time_hi = 86400 + 9 * 3600;
  queries.push_back(range);
  Query verified;
  verified.agg = Aggregate::kCount;
  verified.key_values = {{3}};
  verified.time_lo = 10 * 3600;
  verified.time_hi = 12 * 3600;
  verified.verify = true;
  queries.push_back(verified);
  Query topk;
  topk.agg = Aggregate::kTopK;
  topk.k = 3;
  topk.time_lo = 9 * 3600;
  topk.time_hi = 12 * 3600;
  queries.push_back(topk);
  return queries;
}

/// Reference bytes from a dedicated single-tenant service over the same
/// key material and data — what the registry must match byte for byte.
std::vector<Bytes> DedicatedAnswers(const TenantFixture& t,
                                    const std::vector<Query>& queries) {
  QueryService service(
      std::make_unique<ServiceProvider>(t.config, t.dp->shared_secret()),
      QueryServiceOptions{});
  EXPECT_TRUE(service.LoadRegistry(t.dp->EncryptedRegistry()).ok());
  for (const auto& e : t.epochs) {
    EXPECT_TRUE(service.IngestEpoch(e).ok());
  }
  auto token = service.OpenSession("alice", AliceProof(t));
  EXPECT_TRUE(token.ok());
  std::vector<Bytes> out;
  for (const Query& q : queries) {
    auto got = service.Execute(*token, q);
    EXPECT_TRUE(got.ok()) << got.status().ToString();
    out.push_back(got.ok() ? SerializeQueryResult(*got) : Bytes{});
  }
  return out;
}

class TenantTest : public ::testing::Test {
 protected:
  void SetUp() override { root_ = TempDir(); }
  void TearDown() override { RemoveDirRecursive(root_); }

  TenantRegistryOptions Options() {
    TenantRegistryOptions options;
    options.root_dir = root_;
    options.pool_threads = 4;
    return options;
  }

  std::string root_;
};

TEST_F(TenantTest, RoutesQueriesToTheRightTenant) {
  TenantRegistry registry(Options());
  TenantFixture acme = MakeTenant("acme", 0x61);
  TenantFixture bolt = MakeTenant("bolt", 0x62);
  Provision(&registry, acme);
  Provision(&registry, bolt);
  EXPECT_EQ(registry.NumTenants(), 2u);
  EXPECT_EQ(registry.TenantIds(), (std::vector<std::string>{"acme", "bolt"}));

  const std::vector<Query> queries = TenantQueries();
  const std::vector<Bytes> want_acme = DedicatedAnswers(acme, queries);
  const std::vector<Bytes> want_bolt = DedicatedAnswers(bolt, queries);

  auto acme_token = registry.OpenSession("acme", "alice", AliceProof(acme));
  auto bolt_token = registry.OpenSession("bolt", "alice", AliceProof(bolt));
  ASSERT_TRUE(acme_token.ok()) << acme_token.status().ToString();
  ASSERT_TRUE(bolt_token.ok()) << bolt_token.status().ToString();

  for (size_t i = 0; i < queries.size(); ++i) {
    auto a = registry.Query("acme", *acme_token, queries[i]);
    auto b = registry.Query("bolt", *bolt_token, queries[i]);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(SerializeQueryResult(*a), want_acme[i]) << "query " << i;
    EXPECT_EQ(SerializeQueryResult(*b), want_bolt[i]) << "query " << i;
  }
  // Same user name, same query — different tenants, different data.
  EXPECT_NE(want_acme, want_bolt);

  // A cross-tenant batch fans out on the shared pool; every result lands
  // in its own slot with its own tenant's bytes.
  std::vector<TenantRegistry::TenantQuery> batch;
  for (size_t i = 0; i < queries.size(); ++i) {
    batch.push_back({"acme", *acme_token, queries[i]});
    batch.push_back({"bolt", *bolt_token, queries[i]});
  }
  batch.push_back({"ghost", *acme_token, queries[0]});
  auto results = registry.QueryBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(results[2 * i].ok());
    ASSERT_TRUE(results[2 * i + 1].ok());
    EXPECT_EQ(SerializeQueryResult(*results[2 * i]), want_acme[i]);
    EXPECT_EQ(SerializeQueryResult(*results[2 * i + 1]), want_bolt[i]);
  }
  EXPECT_TRUE(results.back().status().IsNotFound());

  // Unknown tenants are NotFound; sessions do not cross tenants.
  EXPECT_TRUE(
      registry.Query("ghost", *acme_token, queries[0]).status().IsNotFound());
  EXPECT_TRUE(registry.Query("bolt", *acme_token, queries[0])
                  .status()
                  .IsPermissionDenied());
}

TEST_F(TenantTest, CrossTenantCiphertextsFailUnderOtherKeys) {
  TenantRegistry registry(Options());
  TenantFixture acme = MakeTenant("acme", 0x63, /*days=*/1);
  TenantFixture bolt = MakeTenant("bolt", 0x64, /*days=*/1);
  Provision(&registry, acme);
  // bolt gets a service and its own registry, but no epochs yet.
  ASSERT_TRUE(
      registry.CreateTenant("bolt", bolt.config, bolt.dp->shared_secret())
          .ok());
  ASSERT_TRUE(
      registry.LoadRegistry("bolt", bolt.dp->EncryptedRegistry()).ok());

  // An epoch encrypted under acme's enclave secret cannot be adopted by
  // bolt: the enclave-side layout/tag blobs are authenticated, so the
  // wrong key fails decryption instead of producing garbage state.
  const Status stolen = registry.IngestEpoch("bolt", acme.epochs[0]);
  EXPECT_FALSE(stolen.ok());
  EXPECT_TRUE(stolen.IsCorruption()) << stolen.ToString();

  // acme's encrypted user registry is equally unreadable to bolt.
  const Status reg = registry.LoadRegistry("bolt", acme.dp->EncryptedRegistry());
  EXPECT_FALSE(reg.ok());

  // And a proof minted against acme's registry opens nothing on bolt.
  EXPECT_TRUE(registry.OpenSession("bolt", "alice", AliceProof(acme))
                  .status()
                  .IsPermissionDenied());

  // The sabotage attempts left bolt fully functional for its own users.
  ASSERT_TRUE(registry.IngestEpoch("bolt", bolt.epochs[0]).ok());
  auto token = registry.OpenSession("bolt", "alice", AliceProof(bolt));
  ASSERT_TRUE(token.ok());
  Query q;
  q.agg = Aggregate::kCount;
  q.key_values = {{4}};
  q.time_lo = 6 * 3600;
  q.time_hi = 8 * 3600;
  EXPECT_TRUE(registry.Query("bolt", *token, q).ok());
}

TEST_F(TenantTest, DropTenantLeavesOtherTenantsByteIdentical) {
  TenantRegistry registry(Options());
  TenantFixture acme = MakeTenant("acme", 0x65);
  TenantFixture bolt = MakeTenant("bolt", 0x66);
  Provision(&registry, acme);
  Provision(&registry, bolt);

  const bool persistent =
      registry.tenant("acme").ok() &&
      (*registry.tenant("acme"))->provider()->persistent();
  const std::string acme_dir = root_ + "/acme";

  const std::vector<Query> queries = TenantQueries();
  auto bolt_token = registry.OpenSession("bolt", "alice", AliceProof(bolt));
  ASSERT_TRUE(bolt_token.ok());
  std::vector<Bytes> want;
  for (const Query& q : queries) {
    auto got = registry.Query("bolt", *bolt_token, q);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    want.push_back(SerializeQueryResult(*got));
  }

  // Hammer bolt from several threads while acme is dropped mid-flight.
  constexpr int kThreads = 4;
  constexpr int kRounds = 6;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < queries.size(); ++i) {
          const size_t qi = (i + t) % queries.size();
          auto got = registry.Query("bolt", *bolt_token, queries[qi]);
          if (!got.ok()) {
            ++failures;
          } else if (SerializeQueryResult(*got) != want[qi]) {
            ++mismatches;
          }
        }
      }
    });
  }
  ASSERT_TRUE(registry.DropTenant("acme").ok());
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  // acme is gone — routing, sessions, and (for persistent engines) disk.
  EXPECT_TRUE(registry.Query("acme", "tok", queries[0]).status().IsNotFound());
  EXPECT_TRUE(registry.OpenSession("acme", "alice", AliceProof(acme))
                  .status()
                  .IsNotFound());
  EXPECT_EQ(registry.NumTenants(), 1u);
  if (persistent) {
    EXPECT_FALSE(DirExists(acme_dir));
  }
  EXPECT_TRUE(registry.DropTenant("acme").IsNotFound());

  // bolt still serves, byte-identically.
  auto after = registry.Query("bolt", *bolt_token, queries[0]);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(SerializeQueryResult(*after), want[0]);
}

TEST_F(TenantTest, RestartRecoversAllTenants) {
  // Persistence is the mmap engine's contract — pin it regardless of the
  // CONCEALER_STORAGE_ENGINE toggle the rest of the suite runs under.
  TenantRegistryOptions options = Options();
  options.storage.engine = StorageOptions::Engine::kMmap;

  TenantFixture acme = MakeTenant("acme", 0x67);
  TenantFixture bolt = MakeTenant("bolt", 0x68);
  const std::vector<Query> queries = TenantQueries();
  std::vector<Bytes> want_acme;
  std::vector<Bytes> want_bolt;
  {
    TenantRegistry registry(options);
    Provision(&registry, acme);
    Provision(&registry, bolt);
    auto acme_token = registry.OpenSession("acme", "alice", AliceProof(acme));
    auto bolt_token = registry.OpenSession("bolt", "alice", AliceProof(bolt));
    ASSERT_TRUE(acme_token.ok());
    ASSERT_TRUE(bolt_token.ok());
    for (const Query& q : queries) {
      auto a = registry.Query("acme", *acme_token, q);
      auto b = registry.Query("bolt", *bolt_token, q);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      want_acme.push_back(SerializeQueryResult(*a));
      want_bolt.push_back(SerializeQueryResult(*b));
    }
  }  // Registry destroyed: every tenant engine sealed and unmapped.

  // A stray directory that resolves to no credentials must not block the
  // healthy tenants — it lands in recovery_statuses() instead.
  ASSERT_EQ(::mkdir((root_ + "/ghost").c_str(), 0755), 0);

  TenantRegistry reopened(options);
  const auto resolver = [&](const std::string& id)
      -> StatusOr<TenantRegistry::TenantCredentials> {
    if (id == "acme") {
      return TenantRegistry::TenantCredentials{acme.config,
                                               acme.dp->shared_secret()};
    }
    if (id == "bolt") {
      return TenantRegistry::TenantCredentials{bolt.config,
                                               bolt.dp->shared_secret()};
    }
    return Status::NotFound("no credentials for tenant: " + id);
  };
  const Status all = reopened.OpenAll(resolver);
  EXPECT_FALSE(all.ok());  // The ghost dir is surfaced...
  EXPECT_EQ(reopened.NumTenants(), 2u);  // ...but both real tenants opened.

  size_t ok_tenants = 0;
  bool ghost_recorded = false;
  for (const auto& r : reopened.recovery_statuses()) {
    if (r.tenant_id == "ghost") {
      ghost_recorded = true;
      EXPECT_FALSE(r.status.ok());
    } else {
      EXPECT_TRUE(r.status.ok()) << r.tenant_id << ": " << r.status.ToString();
      ++ok_tenants;
    }
  }
  EXPECT_TRUE(ghost_recorded);
  EXPECT_EQ(ok_tenants, 2u);
  EXPECT_FALSE(reopened.AggregateRecoveryStatus().ok());

  // A retried OpenAll REPLACES stale per-tenant outcomes instead of
  // piling duplicates beside them (healthy tenants are skipped, the
  // ghost keeps exactly one — current — entry).
  EXPECT_FALSE(reopened.OpenAll(resolver).ok());
  size_t ghost_entries = 0;
  for (const auto& r : reopened.recovery_statuses()) {
    if (r.tenant_id == "ghost") ++ghost_entries;
  }
  EXPECT_EQ(ghost_entries, 1u);
  EXPECT_EQ(reopened.recovery_statuses().size(), 3u);

  // Every answer from every recovered tenant is byte-identical — no epochs
  // were re-shipped, the segment directories alone carried the state.
  ASSERT_TRUE(reopened.LoadRegistry("acme", acme.dp->EncryptedRegistry()).ok());
  ASSERT_TRUE(reopened.LoadRegistry("bolt", bolt.dp->EncryptedRegistry()).ok());
  auto acme_token = reopened.OpenSession("acme", "alice", AliceProof(acme));
  auto bolt_token = reopened.OpenSession("bolt", "alice", AliceProof(bolt));
  ASSERT_TRUE(acme_token.ok());
  ASSERT_TRUE(bolt_token.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto a = reopened.Query("acme", *acme_token, queries[i]);
    auto b = reopened.Query("bolt", *bolt_token, queries[i]);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(SerializeQueryResult(*a), want_acme[i]) << "query " << i;
    EXPECT_EQ(SerializeQueryResult(*b), want_bolt[i]) << "query " << i;
  }
}

TEST_F(TenantTest, GlobalHotBudgetStealsColdTenantSlots) {
  TenantRegistryOptions options = Options();
  options.storage.engine = StorageOptions::Engine::kMmap;
  options.global_hot_epochs = 2;
  TenantRegistry registry(options);

  TenantFixture acme = MakeTenant("acme", 0x69, /*days=*/3);
  TenantFixture bolt = MakeTenant("bolt", 0x6a, /*days=*/2);
  ASSERT_EQ(acme.epochs.size(), 3u);
  Provision(&registry, acme);

  // Three epochs through a 2-slot global budget: acme already gave one up.
  ASSERT_NE(registry.hot_budget(), nullptr);
  EXPECT_LE(registry.hot_budget()->stats().resident, 2u);

  // bolt's ingest steals the remaining slots from the now-cold acme.
  Provision(&registry, bolt);
  ASSERT_TRUE(registry.ReclaimOverBudget().ok());
  const HotEpochBudget::Stats stats = registry.hot_budget()->stats();
  EXPECT_LE(stats.resident, 2u);
  EXPECT_GT(stats.steals, 0u);
  auto acme_service = registry.tenant("acme");
  ASSERT_TRUE(acme_service.ok());
  ASSERT_NE((*acme_service)->lifecycle(), nullptr);
  EXPECT_GE((*acme_service)->lifecycle()->stats().evictions, 2u);

  // Queries against the evicted tenant reload on demand and stay correct
  // — compare against a dedicated never-evicting run.
  const std::vector<Query> queries = TenantQueries();
  const std::vector<Bytes> want = DedicatedAnswers(acme, queries);
  auto token = registry.OpenSession("acme", "alice", AliceProof(acme));
  ASSERT_TRUE(token.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto got = registry.Query("acme", *token, queries[i]);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(SerializeQueryResult(*got), want[i]) << "query " << i;
  }
  EXPECT_GT((*acme_service)->lifecycle()->stats().loads, 0u);

  // Traffic settles back under the cap once the drains run.
  ASSERT_TRUE(registry.ReclaimOverBudget().ok());
  EXPECT_LE(registry.hot_budget()->stats().resident, 2u);
  EXPECT_EQ(registry.hot_budget()->stats().debt, 0u);
}

TEST_F(TenantTest, InvalidIdsAndDuplicatesRejected) {
  TenantRegistry registry(Options());
  TenantFixture t = MakeTenant("valid-id", 0x6b, /*days=*/1);

  for (const std::string& bad :
       {std::string(""), std::string("."), std::string(".."),
        std::string("a/b"), std::string("a b"), std::string("tenant\n"),
        std::string(65, 'a')}) {
    EXPECT_TRUE(registry.CreateTenant(bad, t.config, t.dp->shared_secret())
                    .IsInvalidArgument())
        << "id: '" << bad << "'";
  }
  EXPECT_FALSE(IsValidTenantId("a/b"));
  EXPECT_TRUE(IsValidTenantId("tenant-1.prod_eu"));

  ASSERT_TRUE(
      registry.CreateTenant("valid-id", t.config, t.dp->shared_secret()).ok());
  EXPECT_TRUE(registry.CreateTenant("valid-id", t.config,
                                    t.dp->shared_secret())
                  .IsInvalidArgument());
  EXPECT_TRUE(registry.DropTenant("never-created").IsNotFound());

  // The mmap engine without a root dir is refused up front, not at first
  // segment write.
  TenantRegistryOptions no_root;
  no_root.storage.engine = StorageOptions::Engine::kMmap;
  TenantRegistry rootless(no_root);
  EXPECT_TRUE(rootless.CreateTenant("x", t.config, t.dp->shared_secret())
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace concealer
