// End-to-end tests on TPC-H LineItem data (paper §9.1 Dataset 2, Exp 8):
// non-time-series multi-attribute grids, 2D ⟨OK, LN⟩ and 4D
// ⟨OK, PK, SK, LN⟩ indexes, count/sum/min/max aggregates.

#include <gtest/gtest.h>

#include <memory>

#include "baseline/cleartext_db.h"
#include "common/random.h"
#include "concealer/data_provider.h"
#include "concealer/service_provider.h"
#include "workload/tpch_generator.h"

namespace concealer {
namespace {

class TpchE2ETest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TpchConfig tpch;
    tpch.total_rows = 6000;
    TpchGenerator gen(tpch);
    items_ = new std::vector<LineItem>(gen.Generate());

    // 2D pipeline: index (OK, LN).
    ConcealerConfig config2d;
    config2d.key_buckets = {64, 7};
    config2d.key_domains = {gen.orderkey_domain(), 8};
    config2d.time_buckets = 0;
    config2d.num_cell_ids = 120;
    config2d.time_quantum = 1;
    auto tuples2d = TpchGenerator::ToTuples2D(*items_);
    dp2d_ = new DataProvider(config2d, Bytes(32, 0x61));
    sp2d_ = new ServiceProvider(config2d, dp2d_->shared_secret());
    auto epochs = dp2d_->EncryptAll(tuples2d);
    ASSERT_TRUE(epochs.ok()) << epochs.status().ToString();
    ASSERT_EQ(epochs->size(), 1u);  // Non-time-series: single epoch.
    ASSERT_TRUE(sp2d_->IngestEpoch((*epochs)[0]).ok());
    oracle2d_ = new CleartextDb(1);
    oracle2d_->Insert(tuples2d);

    // 4D pipeline: index (OK, PK, SK, LN).
    ConcealerConfig config4d;
    config4d.key_buckets = {24, 6, 4, 3};
    config4d.key_domains = {gen.orderkey_domain(), gen.partkey_domain(),
                            gen.suppkey_domain(), 8};
    config4d.time_buckets = 0;
    config4d.num_cell_ids = 300;
    config4d.time_quantum = 1;
    auto tuples4d = TpchGenerator::ToTuples4D(*items_);
    dp4d_ = new DataProvider(config4d, Bytes(32, 0x62));
    sp4d_ = new ServiceProvider(config4d, dp4d_->shared_secret());
    auto epochs4 = dp4d_->EncryptAll(tuples4d);
    ASSERT_TRUE(epochs4.ok());
    ASSERT_TRUE(sp4d_->IngestEpoch((*epochs4)[0]).ok());
    oracle4d_ = new CleartextDb(1);
    oracle4d_->Insert(tuples4d);
  }

  static void TearDownTestSuite() {
    delete sp4d_;
    delete dp4d_;
    delete oracle4d_;
    delete sp2d_;
    delete dp2d_;
    delete oracle2d_;
    delete items_;
  }

  static Query MakeQuery(Aggregate agg, std::vector<uint64_t> keys) {
    Query q;
    q.agg = agg;
    q.key_values = {std::move(keys)};
    q.time_lo = 0;
    q.time_hi = 0;
    return q;
  }

  void ExpectAgree(ServiceProvider* sp, CleartextDb* oracle, const Query& q) {
    auto got = sp->Execute(q);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    auto want = oracle->Execute(q);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(got->count, want->count);
    EXPECT_EQ(got->rows_matched, want->rows_matched);
  }

  static std::vector<LineItem>* items_;
  static DataProvider* dp2d_;
  static ServiceProvider* sp2d_;
  static CleartextDb* oracle2d_;
  static DataProvider* dp4d_;
  static ServiceProvider* sp4d_;
  static CleartextDb* oracle4d_;
};

std::vector<LineItem>* TpchE2ETest::items_ = nullptr;
DataProvider* TpchE2ETest::dp2d_ = nullptr;
ServiceProvider* TpchE2ETest::sp2d_ = nullptr;
CleartextDb* TpchE2ETest::oracle2d_ = nullptr;
DataProvider* TpchE2ETest::dp4d_ = nullptr;
ServiceProvider* TpchE2ETest::sp4d_ = nullptr;
CleartextDb* TpchE2ETest::oracle4d_ = nullptr;

class TpchAggTest : public TpchE2ETest,
                    public ::testing::WithParamInterface<Aggregate> {};

TEST_P(TpchAggTest, TwoDimensionalAggregatesMatchOracle) {
  Rng rng(3);
  for (int i = 0; i < 5; ++i) {
    const LineItem& probe = (*items_)[rng.Uniform(items_->size())];
    ExpectAgree(sp2d_, oracle2d_,
                MakeQuery(GetParam(), {probe.orderkey, probe.linenumber}));
  }
}

TEST_P(TpchAggTest, FourDimensionalAggregatesMatchOracle) {
  Rng rng(4);
  for (int i = 0; i < 5; ++i) {
    const LineItem& probe = (*items_)[rng.Uniform(items_->size())];
    ExpectAgree(sp4d_, oracle4d_,
                MakeQuery(GetParam(), {probe.orderkey, probe.partkey,
                                       probe.suppkey, probe.linenumber}));
  }
}

INSTANTIATE_TEST_SUITE_P(Aggregates, TpchAggTest,
                         ::testing::Values(Aggregate::kCount, Aggregate::kSum,
                                           Aggregate::kMin, Aggregate::kMax),
                         [](const auto& info) {
                           switch (info.param) {
                             case Aggregate::kCount: return "Count";
                             case Aggregate::kSum: return "Sum";
                             case Aggregate::kMin: return "Min";
                             case Aggregate::kMax: return "Max";
                             default: return "Other";
                           }
                         });

TEST_F(TpchE2ETest, MissingKeyCountsZero) {
  // An orderkey in a never-used sparse gap (x % 8 >= 4 is never generated).
  ExpectAgree(sp2d_, oracle2d_, MakeQuery(Aggregate::kCount, {6, 1}));
  auto got = sp2d_->Execute(MakeQuery(Aggregate::kCount, {6, 1}));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->count, 0u);
  // The fetch volume is nonetheless a full bin (volume hiding for misses).
  EXPECT_GT(got->rows_fetched, 0u);
}

TEST_F(TpchE2ETest, VolumeConstantAcross2DQueries) {
  std::set<uint64_t> volumes;
  Rng rng(5);
  for (int i = 0; i < 8; ++i) {
    const LineItem& probe = (*items_)[rng.Uniform(items_->size())];
    auto got = sp2d_->Execute(
        MakeQuery(Aggregate::kCount, {probe.orderkey, probe.linenumber}));
    ASSERT_TRUE(got.ok());
    volumes.insert(got->rows_fetched);
  }
  EXPECT_EQ(volumes.size(), 1u);
}

TEST_F(TpchE2ETest, SumWithVerificationAndOblivious) {
  const LineItem& probe = (*items_)[7];
  Query q = MakeQuery(Aggregate::kSum, {probe.orderkey, probe.linenumber});
  q.verify = true;
  q.oblivious = true;
  auto got = sp2d_->Execute(q);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->verified);
  auto want = oracle2d_->Execute(q);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(got->count, want->count);
}

}  // namespace
}  // namespace concealer
