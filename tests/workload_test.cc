// Tests for the workload generators (WiFi spatial time-series and TPC-H
// LineItem) and the cleartext reference database.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "baseline/cleartext_db.h"
#include "concealer/wire.h"
#include "workload/tpch_generator.h"
#include "workload/wifi_generator.h"

namespace concealer {
namespace {

WifiConfig SmallWifi() {
  WifiConfig config;
  config.num_access_points = 30;
  config.num_devices = 100;
  config.start_time = 0;
  config.duration_seconds = 86400;
  config.total_rows = 5000;
  config.seed = 11;
  return config;
}

TEST(WifiGeneratorTest, GeneratesRequestedRows) {
  WifiGenerator gen(SmallWifi());
  auto tuples = gen.Generate();
  EXPECT_EQ(tuples.size(), 5000u);
  for (const auto& t : tuples) {
    ASSERT_EQ(t.keys.size(), 1u);
    EXPECT_LT(t.keys[0], 30u);
    EXPECT_LT(t.time, 86400u);
    EXPECT_EQ(t.time % 60, 0u);  // Quantized event times.
    EXPECT_FALSE(t.observation.empty());
  }
}

TEST(WifiGeneratorTest, DeterministicForSeed) {
  WifiGenerator a(SmallWifi()), b(SmallWifi());
  auto ta = a.Generate(), tb = b.Generate();
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].keys, tb[i].keys);
    EXPECT_EQ(ta[i].time, tb[i].time);
    EXPECT_EQ(ta[i].observation, tb[i].observation);
  }
}

TEST(WifiGeneratorTest, SortedByTime) {
  WifiGenerator gen(SmallWifi());
  auto tuples = gen.Generate();
  for (size_t i = 1; i < tuples.size(); ++i) {
    EXPECT_LE(tuples[i - 1].time, tuples[i].time);
  }
}

TEST(WifiGeneratorTest, LocationPopularityIsSkewed) {
  WifiGenerator gen(SmallWifi());
  auto tuples = gen.Generate();
  std::map<uint64_t, int> per_loc;
  for (const auto& t : tuples) per_loc[t.keys[0]]++;
  int max_c = 0, min_c = INT32_MAX;
  for (auto& [_, c] : per_loc) {
    max_c = std::max(max_c, c);
    min_c = std::min(min_c, c);
  }
  // Paper reports ≈6K vs ≈50K rows/hour (≈8x spread); Zipf 0.9 over 30
  // locations is far more skewed than that.
  EXPECT_GT(max_c, 5 * std::max(1, min_c));
}

TEST(WifiGeneratorTest, DiurnalPeakVisible) {
  WifiConfig config = SmallWifi();
  config.total_rows = 20000;
  WifiGenerator gen(config);
  auto tuples = gen.Generate();
  std::vector<int> per_hour(24, 0);
  for (const auto& t : tuples) per_hour[(t.time / 3600) % 24]++;
  // Noon carries several times the 3am load.
  EXPECT_GT(per_hour[12], 3 * std::max(1, per_hour[3]));
}

TEST(WifiGeneratorTest, SplitIntoEpochsPartitions) {
  WifiConfig config = SmallWifi();
  config.duration_seconds = 3 * 86400;
  WifiGenerator gen(config);
  auto tuples = gen.Generate();
  auto epochs = WifiGenerator::SplitIntoEpochs(tuples, 86400);
  EXPECT_EQ(epochs.size(), 3u);
  size_t total = 0;
  for (auto& [eid, batch] : epochs) {
    for (auto& t : batch) EXPECT_EQ(t.time / 86400, eid);
    total += batch.size();
  }
  EXPECT_EQ(total, tuples.size());
}

TEST(TpchGeneratorTest, GeneratesSpecConformantRows) {
  TpchConfig config;
  config.total_rows = 10000;
  TpchGenerator gen(config);
  auto items = gen.Generate();
  EXPECT_EQ(items.size(), 10000u);
  for (const auto& it : items) {
    EXPECT_GE(it.orderkey, 1u);
    EXPECT_GE(it.linenumber, 1u);
    EXPECT_LE(it.linenumber, 7u);
    EXPECT_GE(it.quantity, 1u);
    EXPECT_LE(it.quantity, 50u);
    EXPECT_LE(it.discount, 10u);
    EXPECT_LE(it.tax, 8u);
    EXPECT_TRUE(it.returnflag == 'R' || it.returnflag == 'A' ||
                it.returnflag == 'N');
    EXPECT_GE(it.partkey, 1u);
    EXPECT_LT(it.partkey, gen.partkey_domain());
    EXPECT_GE(it.suppkey, 1u);
    EXPECT_LT(it.suppkey, gen.suppkey_domain());
    EXPECT_EQ(it.extendedprice % it.quantity, 0u);  // qty * retail.
  }
}

TEST(TpchGeneratorTest, OrderKeysAreSparse) {
  TpchConfig config;
  config.total_rows = 5000;
  TpchGenerator gen(config);
  auto items = gen.Generate();
  std::set<uint64_t> keys;
  for (const auto& it : items) keys.insert(it.orderkey);
  // Spec: within each 8-key group only 4 keys are used.
  for (uint64_t k : keys) EXPECT_LT(k % 8, 5u) << k;
}

TEST(TpchGeneratorTest, LineNumbersUniquePerOrder) {
  TpchConfig config;
  config.total_rows = 3000;
  TpchGenerator gen(config);
  auto items = gen.Generate();
  std::set<std::pair<uint64_t, uint64_t>> seen;
  for (const auto& it : items) {
    EXPECT_TRUE(seen.insert({it.orderkey, it.linenumber}).second)
        << it.orderkey << ":" << it.linenumber;
  }
}

TEST(TpchGeneratorTest, TupleConversionCarriesAggregates) {
  TpchConfig config;
  config.total_rows = 100;
  TpchGenerator gen(config);
  auto items = gen.Generate();
  auto t2 = TpchGenerator::ToTuples2D(items);
  auto t4 = TpchGenerator::ToTuples4D(items);
  ASSERT_EQ(t2.size(), items.size());
  ASSERT_EQ(t4.size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(t2[i].keys,
              (std::vector<uint64_t>{items[i].orderkey,
                                     items[i].linenumber}));
    EXPECT_EQ(PayloadValue(t2[i]), items[i].quantity);
    EXPECT_EQ(t4[i].keys,
              (std::vector<uint64_t>{items[i].orderkey, items[i].partkey,
                                     items[i].suppkey,
                                     items[i].linenumber}));
    EXPECT_EQ(PayloadValue(t4[i]), items[i].quantity);
    EXPECT_EQ(t2[i].time, 0u);
  }
}

// --- Cleartext reference database ---

TEST(CleartextDbTest, CountAndGroupedAggregates) {
  CleartextDb db(60);
  // Three tuples at loc 1, one at loc 2, distinct devices.
  db.Insert(PlainTuple{{1}, 60, "a", ""});
  db.Insert(PlainTuple{{1}, 120, "b", ""});
  db.Insert(PlainTuple{{1}, 3600, "a", ""});
  db.Insert(PlainTuple{{2}, 60, "c", ""});

  Query q;
  q.agg = Aggregate::kCount;
  q.key_values = {{1}};
  q.time_lo = 0;
  q.time_hi = 200;
  EXPECT_EQ(db.Execute(q)->count, 2u);

  q.key_values.clear();
  q.agg = Aggregate::kTopK;
  q.k = 1;
  q.time_hi = 7200;
  auto top = db.Execute(q);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->keyed_counts.size(), 1u);
  EXPECT_EQ(top->keyed_counts[0].first, (std::vector<uint64_t>{1}));
  EXPECT_EQ(top->keyed_counts[0].second, 3u);

  q.agg = Aggregate::kKeysWithObservation;
  q.observation = "a";
  auto keys = db.Execute(q);
  ASSERT_TRUE(keys.ok());
  ASSERT_EQ(keys->keyed_counts.size(), 1u);
  EXPECT_EQ(keys->keyed_counts[0].second, 2u);
}

TEST(CleartextDbTest, NumericAggregates) {
  CleartextDb db(60);
  db.Insert(PlainTuple{{1}, 0, "", NumericPayload(10)});
  db.Insert(PlainTuple{{1}, 0, "", NumericPayload(30)});
  db.Insert(PlainTuple{{2}, 0, "", NumericPayload(99)});

  Query q;
  q.key_values = {{1}};
  q.agg = Aggregate::kSum;
  EXPECT_EQ(db.Execute(q)->count, 40u);
  q.agg = Aggregate::kMin;
  EXPECT_EQ(db.Execute(q)->count, 10u);
  q.agg = Aggregate::kMax;
  EXPECT_EQ(db.Execute(q)->count, 30u);
  // Empty result: min/max degrade to 0.
  q.key_values = {{9}};
  EXPECT_EQ(db.Execute(q)->count, 0u);
}

TEST(CleartextDbTest, TimeQuantization) {
  CleartextDb db(60);
  db.Insert(PlainTuple{{1}, 59, "", ""});  // Quantizes to 0.
  Query q;
  q.key_values = {{1}};
  q.time_lo = 0;
  q.time_hi = 0;
  EXPECT_EQ(db.Execute(q)->count, 1u);
  q.time_lo = 60;
  q.time_hi = 120;
  EXPECT_EQ(db.Execute(q)->count, 0u);
}

}  // namespace
}  // namespace concealer
